//! End-to-end storm campaigns on real worlds: every regime survives a
//! clean storm with zero violations, an injected synthetic fault
//! shrinks to a handful of incidents, the written reproducer replays
//! the failure, and a storm under query replay conserves traffic.
//!
//! The ledger identities in the invariant catalogue are checked against
//! **process-global** `obs` counters, so every test that runs an engine
//! takes [`chaos_lock`] first — two concurrent storms would interleave
//! their counter deltas and raise false violations.

use anycast_chaos::{
    event_total, generate, minimize, run_storm, scenario_from, ChaosOptions, Incident,
    IncidentKind, Reproducer, StormConfig, StormRegime,
};
use analysis::SiteCapacities;
use cdn::{Cdn, CdnConfig};
use dynamics::{DynUser, DynamicsEngine, RecomputeMode, SwapDeployment};
use netsim::{LatencyModel, SimTime};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use topology::gen::Internet;
use topology::{
    AnycastDeployment, AnycastSite, Asn, InternetGenerator, SiteId, SiteScope, TopologyConfig,
};

/// Serializes every storm in this binary (see module docs).
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A shared 5-site world: topology generation dominates a test, so all
/// storms replay over the same immutable internet.
fn world() -> &'static (Internet, Arc<AnycastDeployment>, Vec<DynUser>) {
    static WORLD: OnceLock<(Internet, Arc<AnycastDeployment>, Vec<DynUser>)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut net = InternetGenerator::generate(&TopologyConfig::small(111));
        let hosts = net.sample_hosters(5);
        let sites: Vec<AnycastSite> = hosts
            .iter()
            .enumerate()
            .map(|(i, h)| AnycastSite {
                id: SiteId(i as u32),
                name: format!("s{i}"),
                host: *h,
                location: net.graph.node(*h).pops[0],
                scope: SiteScope::Global,
            })
            .collect();
        let dep = AnycastDeployment::new("chaos-world", sites, vec![]);
        let users: Vec<DynUser> = net
            .user_locations()
            .iter()
            .map(|l| DynUser {
                asn: l.asn,
                location: net.world.region(l.region).center,
                weight: 1.0,
                queries_per_day: 1_000.0,
            })
            .collect();
        (net, Arc::new(dep), users)
    })
}

fn engine(mode: RecomputeMode) -> DynamicsEngine<'static> {
    let (net, dep, users) = world();
    DynamicsEngine::new(
        &net.graph,
        Arc::clone(dep),
        LatencyModel::default(),
        users.clone(),
        mode,
    )
}

/// The heaviest transit ASes that do not themselves host a site — the
/// peering-flap targets whose loss actually reroutes user weight.
fn neighbors() -> Vec<Asn> {
    let (_, dep, _) = world();
    engine(RecomputeMode::Full)
        .transit_loads()
        .into_iter()
        .map(|(asn, _)| asn)
        .filter(|asn| !dep.sites.iter().any(|s| s.host == *asn))
        .take(3)
        .collect()
}

fn routing_cfg(seed: u64, incidents: usize) -> StormConfig {
    StormConfig {
        seed,
        incidents,
        start: SimTime::from_secs(60.0),
        mean_gap_ms: 45_000.0,
        sites: 5,
        neighbors: neighbors(),
        centers: vec![],
        rings: 0,
        regime: StormRegime::Routing,
    }
}

#[test]
fn routing_storm_survives_with_zero_violations() {
    let _g = chaos_lock();
    let incidents = generate(&routing_cfg(2021, 150));
    let report = run_storm(
        &engine,
        &incidents,
        &ChaosOptions { name: "routing-storm".into(), oracle_every: 8, ..Default::default() },
    );
    assert!(
        report.ok(),
        "routing storm violated invariants: {}",
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; ")
    );
    assert!(report.epochs >= 150, "every incident steps at least one epoch");
    assert!(report.events >= event_total(&incidents) as u64);
    assert!(report.oracle_checks >= 10, "oracle consulted throughout");
    assert!(!report.timeline.records.is_empty());
}

#[test]
fn load_storm_with_policy_churn_survives() {
    let _g = chaos_lock();
    let (_, dep, _) = world();
    let centers: Vec<_> = dep.sites.iter().map(|s| s.location).collect();
    let caps = SiteCapacities::from_headroom(&engine(RecomputeMode::Full).site_loads(), 1.3, 1.0);
    let factory = move |mode: RecomputeMode| {
        engine(mode)
            .with_capacities(caps.clone())
            .with_controller(Box::new(loadmgmt::HysteresisController::default()))
    };
    let cfg = StormConfig {
        seed: 7,
        incidents: 150,
        start: SimTime::from_secs(60.0),
        mean_gap_ms: 45_000.0,
        sites: 5,
        neighbors: neighbors(),
        centers,
        rings: 0,
        regime: StormRegime::Load,
    };
    let incidents = generate(&cfg);
    assert!(
        incidents.iter().any(|i| matches!(i.kind, IncidentKind::PolicySwitch { .. })),
        "the storm exercises controller churn"
    );
    let report = run_storm(
        &factory,
        &incidents,
        &ChaosOptions { name: "load-storm".into(), oracle_every: 8, ..Default::default() },
    );
    assert!(
        report.ok(),
        "load storm violated invariants: {}",
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; ")
    );
    assert!(report.epochs >= 150);
}

#[test]
fn swap_storm_over_cdn_rings_survives() {
    let _g = chaos_lock();
    static CDN: OnceLock<(Internet, Cdn, Vec<DynUser>)> = OnceLock::new();
    let (net, cdn, users) = CDN.get_or_init(|| {
        let mut net = InternetGenerator::generate(&TopologyConfig::small(131));
        let cdn = Cdn::build(&mut net, &CdnConfig { scale: 0.12, ..CdnConfig::small() });
        let users: Vec<DynUser> = net
            .user_locations()
            .iter()
            .map(|l| DynUser {
                asn: l.asn,
                location: net.world.region(l.region).center,
                weight: 1.0,
                queries_per_day: 1_000.0,
            })
            .collect();
        (net, cdn, users)
    });
    let swap_set: Vec<SwapDeployment> = cdn
        .rings
        .iter()
        .map(|r| SwapDeployment {
            deployment: Arc::clone(&r.deployment),
            universe: cdn.ring_universe(r),
        })
        .collect();
    let factory = move |mode: RecomputeMode| {
        DynamicsEngine::new(
            &net.graph,
            Arc::clone(&cdn.rings[0].deployment),
            LatencyModel::default(),
            users.clone(),
            mode,
        )
        .with_swap_set(swap_set.clone(), 0)
    };
    let cfg = StormConfig {
        seed: 31,
        incidents: 100,
        start: SimTime::from_secs(60.0),
        mean_gap_ms: 50_000.0,
        sites: cdn.rings[0].deployment.sites.len() as u32,
        neighbors: vec![],
        centers: vec![],
        rings: cdn.rings.len() as u32,
        regime: StormRegime::Swap,
    };
    let incidents = generate(&cfg);
    assert!(incidents.iter().any(|i| matches!(i.kind, IncidentKind::SwapCycle { .. })));
    let report = run_storm(
        &factory,
        &incidents,
        &ChaosOptions { name: "swap-storm".into(), oracle_every: 8, ..Default::default() },
    );
    assert!(
        report.ok(),
        "swap storm violated invariants: {}",
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; ")
    );
    assert!(report.epochs >= 100);
}

/// A routing storm with one planted capacity-dip incident. The engine
/// tracks no capacities, so the dip is a recorded no-op — but its label
/// is unique in the storm, which makes it the perfect synthetic-fault
/// trigger: exactly one incident is "guilty" and the minimizer must
/// find it.
fn planted_storm() -> (Vec<Incident>, ChaosOptions) {
    let mut incidents = generate(&routing_cfg(99, 80));
    let k = 40usize;
    let mid = (incidents[k - 1].at.as_ms() + incidents[k].at.as_ms()) / 2.0;
    incidents.insert(
        k,
        Incident {
            at: SimTime(mid),
            kind: IncidentKind::CapacityDip { site: SiteId(2), factor: 0.55, hold_ms: 40_000.0 },
        },
    );
    let opts = ChaosOptions {
        name: "planted".into(),
        oracle_every: 0,
        synthetic_violation_label: Some("cap site-2".into()),
        ..Default::default()
    };
    (incidents, opts)
}

#[test]
fn synthetic_violation_minimizes_to_a_handful_of_events() {
    let _g = chaos_lock();
    let (incidents, opts) = planted_storm();
    let report = run_storm(&engine, &incidents, &opts);
    assert!(!report.ok(), "the planted fault fires");
    assert_eq!(report.violations[0].invariant, "synthetic");

    let min = minimize(&engine, &incidents, &opts, 200);
    assert!(min.violation.is_some(), "minimal storm still fails");
    assert_eq!(min.violation.as_ref().unwrap().invariant, "synthetic");
    assert_eq!(
        min.incidents.len(),
        1,
        "exactly the planted incident survives, got {:?}",
        min.incidents
    );
    assert!(
        matches!(min.incidents[0].kind, IncidentKind::CapacityDip { site: SiteId(2), .. }),
        "the guilty incident is the planted capacity dip"
    );
    assert!(event_total(&min.incidents) <= 10, "minimal reproducer is within 10 events");
    assert!(min.probes <= 200);
}

#[test]
fn reproducer_file_round_trips_and_replays_the_failure() {
    let _g = chaos_lock();
    let (incidents, opts) = planted_storm();
    let min = minimize(&engine, &incidents, &opts, 200);
    assert!(min.violation.is_some());

    let repro = Reproducer {
        name: opts.name.clone(),
        seed: 99,
        oracle_every: opts.oracle_every,
        synthetic: opts.synthetic_violation_label.clone(),
        incidents: min.incidents.clone(),
        notes: vec![min.violation.as_ref().unwrap().to_string()],
    };
    let path = std::env::temp_dir().join("anycast_chaos_repro_test.txt");
    repro.write(&path).expect("reproducer written");
    let parsed = Reproducer::parse(&std::fs::read_to_string(&path).unwrap()).expect("parses");
    let _ = std::fs::remove_file(&path);
    assert_eq!(parsed.incidents, min.incidents, "incident list survives the file round-trip");

    let replayed = run_storm(&engine, &parsed.incidents, &parsed.options());
    assert!(!replayed.ok(), "the reproducer replays the violation");
    assert_eq!(replayed.violations[0].invariant, "synthetic");
}

#[test]
fn storm_under_query_replay_conserves_traffic() {
    let _g = chaos_lock();
    let incidents = generate(&routing_cfg(55, 40));
    let scenario = scenario_from("replay-storm", &incidents);
    let mut eng = engine(RecomputeMode::Incremental);
    let horizon = incidents.last().unwrap().at.as_ms() + 120_000.0;
    let cfg = replay::ReplayConfig {
        seed: 55,
        window_ms: 60_000.0,
        horizon_ms: horizon,
        ..Default::default()
    };
    let outcome = replay::replay(&mut eng, &scenario, &cfg);
    assert!(outcome.generated > 0);
    assert_eq!(
        outcome.served + outcome.degraded,
        outcome.generated,
        "every generated query is either served or degraded"
    );
    assert_eq!(outcome.windows.len() as u64, (horizon / 60_000.0).ceil() as u64);
    assert!(!outcome.timeline.records.is_empty());
}
