//! Deterministic fork-join parallelism on std threads.
//!
//! The simulator's determinism contract is *thread-count invariance*:
//! for a fixed campaign seed, every artifact must be bit-identical
//! whether the run uses 1 thread or 64. This crate provides the one
//! primitive that makes that cheap to guarantee — an **ordered parallel
//! map** ([`ordered_map`]):
//!
//! 1. work items are indexed `0..n`;
//! 2. any per-item randomness comes from an RNG seeded by
//!    [`seed_for`]`(campaign_seed, index)`, never from a shared stream;
//! 3. workers pull indices from a shared atomic counter (so load
//!    balances dynamically), but results are merged back **in index
//!    order**.
//!
//! Scheduling therefore affects only *when* an item runs, never *what*
//! it computes or *where* its result lands. `rayon` is not on the
//! offline allowlist, so this is `std::thread::scope` +
//! `available_parallelism` only.

#![deny(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Deterministic hash state: `DefaultHasher::new()` uses fixed keys, so
/// for a given insertion/removal sequence the table — and therefore its
/// iteration order — is identical on every run of the same binary.
/// `RandomState` (the `HashMap` default) reseeds per process, which
/// silently reorders float accumulations and breaks the bit-identical
/// artifact contract.
pub type DetState = BuildHasherDefault<std::collections::hash_map::DefaultHasher>;

/// A `HashMap` with run-to-run deterministic iteration order (given a
/// deterministic insertion sequence). Use for any map whose iteration
/// feeds an artifact, especially float accumulations.
pub type DetHashMap<K, V> = HashMap<K, V, DetState>;

/// A `HashSet` with run-to-run deterministic iteration order.
pub type DetHashSet<T> = HashSet<T, DetState>;

/// Process-wide thread-count override; 0 means "use
/// `available_parallelism`". Set from the `--threads` CLI flag.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of worker threads used by [`ordered_map`].
/// `0` restores the default (all available cores).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The number of worker threads [`ordered_map`] will use: the
/// [`set_threads`] override if set, else `available_parallelism`
/// (falling back to 1 if that is unknowable).
pub fn threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Derives the RNG seed for work item `index` of a campaign.
///
/// SplitMix64 finalization over the pair: statistically independent
/// streams for neighbouring indices, and a pure function of
/// `(campaign_seed, index)` — never of scheduling.
///
/// # Examples
///
/// ```
/// // Pure in its inputs: the same (campaign, index) pair always yields
/// // the same seed, and neighbouring indices get unrelated seeds.
/// assert_eq!(anycast_par::seed_for(2021, 5), anycast_par::seed_for(2021, 5));
/// assert_ne!(anycast_par::seed_for(2021, 5), anycast_par::seed_for(2021, 6));
/// assert_ne!(anycast_par::seed_for(2021, 5), anycast_par::seed_for(2022, 5));
/// ```
pub fn seed_for(campaign_seed: u64, index: u64) -> u64 {
    let mut z = campaign_seed
        .rotate_left(17)
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x243f_6a88_85a3_08d3);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps `f` over `items` on up to [`threads`] worker threads and
/// returns the results **in item order** — bit-identical for any
/// thread count, including 1.
///
/// `f` receives `(index, &item)`; derive any per-item randomness from
/// the index (see [`seed_for`]), not from shared state. A panic in `f`
/// propagates to the caller after the scope unwinds.
///
/// # Examples
///
/// ```
/// // Results land in item order no matter which worker ran which item,
/// // so a parallel campaign merges identically to a sequential one.
/// let shards: Vec<u64> = (0..40).collect();
/// let sequential = anycast_par::ordered_map_with(1, &shards, |i, s| s * 2 + anycast_par::seed_for(7, i as u64) % 2);
/// let parallel = anycast_par::ordered_map_with(8, &shards, |i, s| s * 2 + anycast_par::seed_for(7, i as u64) % 2);
/// assert_eq!(sequential, parallel);
/// ```
pub fn ordered_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads().clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Index-ordered merge: scheduling decided which bucket each result
    // sits in, the sort puts them back in item order.
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    for bucket in &mut buckets {
        tagged.append(bucket);
    }
    tagged.sort_unstable_by_key(|(i, _)| *i);
    debug_assert!(tagged.iter().enumerate().all(|(k, (i, _))| k == *i));
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Runs two closures and returns both results, overlapping them on a
/// scoped worker thread when more than one worker is configured — the
/// two-branch fork-join under the epoch pipelining in `dynamics`
/// (epoch N's record rendering overlapped with epoch N+1's
/// invalidation planning).
///
/// Determinism contract: `join` only decides *when* `a` runs relative
/// to `b`, never what either computes — so it is byte-identity safe
/// exactly when `a` and `b` share no mutable state, which the borrow
/// checker enforces (`a` must be `Send`; in the pipelining use, `a`
/// closes over owned data only). At [`threads`]` <= 1` both run
/// sequentially on the caller thread, `a` first — the reference
/// schedule every other thread count must match.
///
/// A panic in either closure propagates to the caller.
///
/// # Examples
///
/// ```
/// let (a, b) = anycast_par::join(|| 2 + 2, || "done");
/// assert_eq!((a, b), (4, "done"));
/// ```
pub fn join<A, B, FA, FB>(a: FA, b: FB) -> (A, B)
where
    A: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B,
{
    if threads() <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        thread::scope(|scope| {
            let ha = scope.spawn(a);
            let rb = b();
            (ha.join().unwrap(), rb)
        })
    }
}

/// [`ordered_map`] with an explicit thread count, ignoring the global
/// setting. `threads = 1` is the sequential reference path.
pub fn ordered_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.swap(threads.max(1), Ordering::Relaxed));
    ordered_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u32> = vec![];
        assert!(ordered_map(&empty, |_, x: &u32| *x).is_empty());
        assert_eq!(ordered_map(&[7u32], |i, x| (i, *x)), vec![(0, 7)]);
    }

    #[test]
    fn preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let reference: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for t in [1, 2, 4, 8, 16] {
            let got = ordered_map_with(t, &items, |_, x| x * 3 + 1);
            assert_eq!(got, reference, "threads={t}");
        }
    }

    #[test]
    fn derived_seeds_are_scheduling_independent() {
        let items: Vec<u64> = (0..64).collect();
        let seq = ordered_map_with(1, &items, |i, _| seed_for(42, i as u64));
        let par = ordered_map_with(8, &items, |i, _| seed_for(42, i as u64));
        assert_eq!(seq, par);
        // Distinct indices get distinct seeds.
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seq.len());
    }

    #[test]
    fn uneven_work_still_merges_in_order() {
        let items: Vec<usize> = (0..200).collect();
        let got = ordered_map_with(8, &items, |i, _| {
            // Skew the per-item cost so workers finish out of phase.
            let mut acc = 0u64;
            for k in 0..(i % 17) * 1000 {
                acc = acc.wrapping_add(k as u64).rotate_left(3);
            }
            (i, acc)
        });
        for (k, (i, _)) in got.iter().enumerate() {
            assert_eq!(k, *i);
        }
    }

    #[test]
    fn join_returns_both_results_at_any_thread_count() {
        for t in [1, 2, 8] {
            set_threads(t);
            let items: Vec<u64> = (0..100).collect();
            let (a, b) = join(
                || items.iter().map(|x| x * 3).sum::<u64>(),
                || items.iter().rev().map(|x| x + 1).collect::<Vec<_>>(),
            );
            assert_eq!(a, 14850, "threads={t}");
            assert_eq!(b.len(), 100);
            assert_eq!(b[0], 100);
        }
        set_threads(0);
    }

    #[test]
    fn join_overlapped_branch_may_mutate_disjoint_state() {
        set_threads(4);
        let mut side = Vec::new();
        let owned = vec![1u64, 2, 3];
        let (sum, ()) = join(move || owned.iter().sum::<u64>(), || side.push(9));
        assert_eq!(sum, 6);
        assert_eq!(side, vec![9]);
        set_threads(0);
    }

    #[test]
    fn global_override_round_trips() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
