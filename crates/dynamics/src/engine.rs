//! The dynamics engine: apply a batched epoch of routing events,
//! recompute only what the epoch could have moved.
//!
//! [`DynamicsEngine`] drives one deployment through a [`Scenario`] on
//! `netsim`'s simulated clock. Every event sharing one `SimTime` is
//! applied as a *single epoch* (with defined precedence and
//! cancellation of opposing same-timestamp pairs — see
//! `docs/DYNAMICS.md` for the full table), then the engine rebuilds
//! the catchment over the *effective* deployment (surviving sites,
//! current prefix announcements, peering withholds, and per-site
//! drain withhold sets) — cheap thanks to [`RouteCache`] memoization —
//! and decides, per expansion *cohort* (the contiguous user-id range
//! fanned out from one weighted source — see [`crate::columnar`]),
//! whether the epoch could possibly have changed its BGP choice.
//! Candidate cohorts come from the inverted group index, not a
//! population scan; only challenged cohorts are re-ranked, and the
//! result fans across the cohort's column slices. Everybody else
//! reuses their stored assignment verbatim.
//!
//! # Why the reuse rule is sound
//!
//! Catchments are built from *origin groups* keyed `(host AS, scope)`;
//! each group's routes live behind an `Arc` memoized by the route
//! cache, so an unchanged group is recognizable by pointer identity
//! plus an identical hosted-site list plus an identical drain
//! footprint. The engine diffs successive group sets and recomputes a
//! user when, and only when:
//!
//! 1. the user's *winning* group was removed or changed — its routes,
//!    its hosted sites, or its sites' drain withhold sets are
//!    different, so anything about the stored assignment may be
//!    stale; or
//! 2. some added or changed group's new route at the user's source AS
//!    satisfies [`CandidateKey::challenged_by`] against the stored
//!    winning key — i.e. it beats or ties the winner on the
//!    geography-blind prefix of the BGP decision (class, path length)
//!    and could therefore take over once the early-exit tie-break
//!    runs; or
//! 3. the user was unserved and an added or changed group now has any
//!    route at their source.
//!
//! Everything else is provably unaffected: removing or weakening a
//! group the user did not choose cannot improve it, an unchanged
//! group ranks and materializes exactly as before, and a challenger
//! that loses on (class, length) loses outright because the early-exit
//! distance is only consulted on ties. Draining a site only *shrinks*
//! eligibility inside its own group, so it cannot attract users from
//! other groups; removing a drain re-attracts exactly the users whose
//! stored key the restored group challenges (it won against them
//! before, so it beats-or-ties them now).
//!
//! One refinement sharpens rule 1: a group whose *only* change is its
//! hosted-site list (routes `Arc` and drain footprint identical — the
//! shape of site up/down events and of deployment swaps between
//! nested rings) is diffed site-by-site instead of invalidated
//! wholesale. Its own users re-rank only when their stored site was
//! removed or an added site beats it on `materialize`'s
//! nearest-to-entry tie-break (each assignment stores its path's entry
//! point for exactly this comparison); removals never challenge other
//! groups (shrinking a group cannot improve it), additions challenge
//! through rule 2 as usual. Deployment swaps
//! ([`RoutingEvent::RingPromote`] and friends) re-key all per-site
//! state across a stable site-id remap before this diff runs, so a
//! nested-ring promotion reuses every assignment the new sites do not
//! beat. The extended argument, with the drain state machine, the
//! swap remap soundness proof, and worked examples, lives in
//! `docs/DYNAMICS.md`.

use crate::columnar::{Cohort, GroupIndex, UserColumns, NO_ASN, NO_KEY, NO_SITE};
use crate::event::{EventQueue, RoutingEvent};
use crate::scenario::Scenario;
use crate::timeline::{weighted_median, EpochRecord, Timeline};
use analysis::SiteCapacities;
use geo::GeoPoint;
use loadmgmt::{LoadAction, LoadController, LoadObservation};
use netsim::{LastMile, LatencyModel, PathProfile, SimClock, SimTime};
use par::{DetHashMap, DetHashSet};
use std::sync::Arc;
use topology::{
    AnycastDeployment, AnycastSite, AsGraph, Asn, CandidateKey, Catchment, ExportScope,
    OriginRoutes, RouteCache, SiteDrain, SiteId,
};

/// Floor of the stylized BGP convergence model: even a tiny change
/// takes a couple of seconds to propagate.
const BASE_CONVERGENCE_MS: f64 = 2_000.0;
/// Slope of the convergence model: shifting the entire user base costs
/// an extra ~28 s of path exploration (order of the classic BGP
/// convergence measurements).
const SHIFT_CONVERGENCE_MS: f64 = 28_000.0;
const MS_PER_DAY: f64 = 86_400_000.0;

/// How the engine reacts to an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecomputeMode {
    /// Re-rank only users whose stored choice the event could have
    /// invalidated (the production path).
    Incremental,
    /// Re-rank every user at every event — the reference oracle the
    /// incremental path must match record-for-record.
    Full,
}

/// One weighted traffic source driven through a scenario.
#[derive(Debug, Clone, Copy)]
pub struct DynUser {
    /// Source AS.
    pub asn: Asn,
    /// Source location.
    pub location: GeoPoint,
    /// Population weight (user count).
    pub weight: f64,
    /// Query volume this source sends per day (for the degraded-query
    /// accounting during convergence windows).
    pub queries_per_day: f64,
}

/// A cohort's current assignment, in *original* deployment site ids —
/// the rank-result type the re-rank step produces before fanning it
/// across the cohort's column slices (every member of an expansion
/// cohort shares one `(source AS, location)` pair and therefore one
/// assignment).
#[derive(Debug, Clone, Copy, PartialEq)]
struct UserState {
    site: Option<SiteId>,
    key: Option<CandidateKey>,
    /// The AS adjacent to the serving site's host on the current path —
    /// the neighbor that heard the host's announcement, i.e. the
    /// session a `PeeringDown` against that neighbor would sever.
    via: Option<Asn>,
    /// Entry point of the current path into the origin AS — the anchor
    /// of `materialize`'s nearest-site tie-break, stored so the
    /// site-diff rule can test whether an added site would beat the
    /// stored one without re-materializing the path.
    entry: Option<GeoPoint>,
    latency_ms: f64,
    path_km: f64,
}

const UNSERVED: UserState =
    UserState { site: None, key: None, via: None, entry: None, latency_ms: 0.0, path_km: 0.0 };

/// One entry of the engine's deployment swap set: an alternative
/// deployment the engine may switch to mid-scenario via
/// [`RoutingEvent::RingPromote`] / [`RoutingEvent::RingDemote`] /
/// [`RoutingEvent::DeploymentSwap`], plus a stable *universe id* per
/// site. Universe ids identify one physical site across the whole set
/// (for nested CDN rings: the site's index in the largest ring, see
/// `cdn::Cdn::ring_universe`); a swap re-keys every piece of per-site
/// state through them.
#[derive(Debug, Clone)]
pub struct SwapDeployment {
    /// The deployment this entry swaps in.
    pub deployment: Arc<AnycastDeployment>,
    /// Universe id of each site, indexed by the deployment's site ids.
    /// Must be unique within the entry; ids shared across entries mark
    /// the same physical site.
    pub universe: Vec<u32>,
}

/// Snapshot of one origin group of the current catchment: the shared
/// route table and the hosted sites in original ids, sorted.
#[derive(Debug, Clone)]
struct GroupSnap {
    routes: Arc<OriginRoutes>,
    sites: Vec<SiteId>,
    /// Active drain footprint of the group's sites (original ids and
    /// withheld sessions, sorted by site): per-session eligibility
    /// state the routes `Arc` cannot see, so it must take part in the
    /// group diff.
    drains: Vec<(SiteId, Vec<Asn>)>,
}

/// A running load-aware drain: the *staged → holding* half of the
/// drain state machine (aborted and completed drains leave no state
/// behind). See `docs/DYNAMICS.md` for the full diagram.
#[derive(Debug, Clone)]
struct DrainState {
    site: SiteId,
    /// Generation stamp carried by this drain's scheduled follow-up
    /// events; a follow-up with a stale stamp is a recorded no-op.
    gen: u64,
    /// Host-adjacent neighbor ASes in escalation order, lightest
    /// current traffic first.
    plan: Vec<Asn>,
    /// Total stages; the last one withdraws the site.
    stages: u32,
    /// Stages applied so far.
    stage: u32,
    /// Simulated time between stage escalations.
    stage_ms: f64,
    /// How long the fully-drained site stays down.
    hold_ms: f64,
    /// Currently withheld sessions (sorted; always a reordering of a
    /// prefix of `plan`).
    withheld: Vec<Asn>,
    /// The final stage has run: the site is down for its maintenance
    /// hold, awaiting its generation-stamped `DrainEnd`.
    holding: bool,
}

/// Everything one batched epoch's apply step produced besides the
/// state mutation itself: display labels, annotation notes, the sites
/// whose drains escalated (the capacity-check candidates), and the
/// follow-up events to schedule *only if the epoch commits*.
struct BatchOutcome {
    labels: Vec<String>,
    notes: Vec<String>,
    escalated: Vec<SiteId>,
    followups: Vec<(SimTime, RoutingEvent)>,
}

/// The planning half of one recompute: the new catchment, its origin
/// groups snapshotted in original site ids, and the affected-cohort
/// selection the group diff produced. Everything here is decided
/// before any assignment state is written — the seam the phase split
/// (`plan → rank → commit → render`) exposes so the pipelined stepper
/// can overlap epoch N's record rendering with epoch N+1's planning.
struct ReassignPlan<'g> {
    catchment: Option<Catchment<'g>>,
    dense_to_orig: Vec<SiteId>,
    new_groups: DetHashMap<(Asn, ExportScope), GroupSnap>,
    affected: Vec<u32>,
    slice_users: u64,
}

/// The deferred tail of one epoch record: every scalar the commit
/// phase already fixed, plus the raw `(latency, weight)` points whose
/// weighted-median sort — and the fields derived from it — are left to
/// [`RecordSeed::render`]. The seed owns its data outright (no engine
/// borrow), so rendering is a pure function that may run on a
/// [`par::join`] worker while the engine mutates itself for the next
/// epoch, byte-identical at any thread count.
#[derive(Debug, Clone)]
struct RecordSeed {
    t_ms: f64,
    label: String,
    shifted: f64,
    shifted_qpd: f64,
    served_w: f64,
    path_sum: f64,
    latency_pts: Vec<(f64, f64)>,
    recomputed: u64,
    reused: u64,
    total_weight: f64,
    baseline_median_ms: Option<f64>,
    headroom_frac: Option<f64>,
    note: String,
}

impl RecordSeed {
    /// Sorts the latency points (the weighted median) and derives the
    /// remaining record fields.
    fn render(mut self) -> EpochRecord {
        let median_ms = weighted_median(&mut self.latency_pts);
        let frac = |w: f64| if self.total_weight > 0.0 { w / self.total_weight } else { 0.0 };
        let shifted_frac = frac(self.shifted);
        let unserved_frac = (1.0 - frac(self.served_w)).max(0.0);
        let convergence_ms = if self.shifted > 0.0 {
            BASE_CONVERGENCE_MS + SHIFT_CONVERGENCE_MS * shifted_frac
        } else {
            0.0
        };
        EpochRecord {
            t_ms: self.t_ms,
            event: self.label,
            shifted: self.shifted,
            shifted_frac,
            unserved_frac,
            median_ms,
            inflation_ms: match (median_ms, self.baseline_median_ms) {
                (Some(m), Some(b)) => Some(m - b),
                _ => None,
            },
            mean_path_km: if self.served_w > 0.0 {
                Some(self.path_sum / self.served_w)
            } else {
                None
            },
            convergence_ms,
            degraded_queries: self.shifted_qpd * convergence_ms / MS_PER_DAY,
            recomputed: self.recomputed,
            reused: self.reused,
            headroom_frac: self.headroom_frac,
            note: self.note,
        }
    }
}

/// Removes the intersection of two sorted, deduplicated sets and
/// returns it — the same-timestamp cancellation rule of batched
/// epochs (e.g. `SiteDown` + `SiteUp` of one site net out to a
/// recorded no-op flap).
fn cancel_pairs<T: Ord + Copy>(a: &mut Vec<T>, b: &mut Vec<T>) -> Vec<T> {
    let both: Vec<T> = a.iter().copied().filter(|x| b.binary_search(x).is_ok()).collect();
    a.retain(|x| both.binary_search(x).is_err());
    b.retain(|x| both.binary_search(x).is_err());
    both
}

/// Inserts `a` into the sorted set `v` (no-op if present).
fn insert_sorted(v: &mut Vec<Asn>, a: Asn) {
    if let Err(pos) = v.binary_search(&a) {
        v.insert(pos, a);
    }
}

/// Removes `a` from the sorted set `v` (no-op if absent).
fn remove_sorted(v: &mut Vec<Asn>, a: Asn) {
    if let Ok(pos) = v.binary_search(&a) {
        v.remove(pos);
    }
}

/// Drives one deployment through scripted routing events, maintaining
/// every user's assignment incrementally.
///
/// An engine is single-shot: construct, optionally inspect the initial
/// steady state ([`DynamicsEngine::init_record`],
/// [`DynamicsEngine::site_loads`]), then [`DynamicsEngine::run`] one
/// scenario.
#[derive(Debug)]
pub struct DynamicsEngine<'g> {
    graph: &'g AsGraph,
    base: Arc<AnycastDeployment>,
    model: LatencyModel,
    mode: RecomputeMode,
    /// Expansion cohorts in user-id order: cohort `c` owns the
    /// contiguous user-id range `cohorts[c].range()` of the columns.
    cohorts: Vec<Cohort>,
    /// Struct-of-arrays per-user state (see [`UserColumns`]).
    cols: UserColumns,
    /// The authoritative per-cohort state: cohort `c`'s members all
    /// hold exactly `states[c]` fanned out. Every hot path
    /// (invalidation, apply, aggregates, load accumulation) reads and
    /// compares this contiguous table; the per-user columns are a view
    /// materialized from it on demand.
    states: Vec<UserState>,
    /// Cohort ids whose column rows lag `states`: the epoch apply
    /// pushes a mark here instead of fanning values across member
    /// slices inline, and [`DynamicsEngine::columns`] drains the
    /// marks. A million-user flap therefore marks a few dozen cohorts
    /// and writes nothing per-user until a bulk consumer actually asks
    /// for the columnar view. May hold duplicates between syncs.
    stale: Vec<u32>,
    /// Inverted index `(host, scope) → cohort ids` over the *stored*
    /// winning keys, maintained incrementally so epoch invalidation is
    /// slice iteration, not a full-population scan.
    index: GroupIndex,
    /// Cohorts whose site a deployment swap removed while their stored
    /// key survived — the rule-0 set, re-ranked unconditionally at the
    /// next recompute. Sorted; always cleared by `reassign`.
    orphans: Vec<u32>,
    /// Running totals behind `dynamics.invalidation.*`: users covered
    /// by index slices the invalidation actually visited, vs the
    /// population a per-user scan would have walked.
    slice_users_total: u64,
    population_total: u64,
    total_weight: f64,
    cache: RouteCache,
    clock: SimClock,
    /// Announcement state per original site id (`false` = down/drained).
    alive: Vec<bool>,
    /// Host ASes that currently withdraw the prefix entirely. Sorted.
    withdrawn_hosts: Vec<Asn>,
    /// Neighbor ASes the deployment currently has no sessions toward
    /// (merged into the effective withhold list). Sorted.
    lost_peerings: Vec<Asn>,
    /// Origin-group snapshot of the current catchment.
    groups: DetHashMap<(Asn, ExportScope), GroupSnap>,
    baseline_median_ms: Option<f64>,
    init_record: Option<EpochRecord>,
    /// Per-site load limits. `None` (the default) runs drains
    /// unguarded and leaves `headroom_frac` empty.
    capacities: Option<SiteCapacities>,
    /// Active drains, kept sorted by site id.
    drains: Vec<DrainState>,
    /// Generation stamp handed to the next drain, so stage and end
    /// events of dead drains are recognizably stale.
    next_gen: u64,
    /// Deployments the engine may swap between mid-scenario. Empty
    /// (the default) makes any swap event a hard error.
    swap_set: Vec<SwapDeployment>,
    /// Index of the currently effective swap-set entry.
    current_swap: usize,
    /// Attached closed-loop load controller (`None` — the default —
    /// reproduces today's behavior byte-for-byte).
    controller: Option<Box<dyn LoadController>>,
    /// Controller-withheld sessions per original site id, each sorted
    /// by ASN and carrying the user weight the session had when
    /// withheld (the release-projection estimate).
    ctrl_withheld: Vec<Vec<(Asn, f64)>>,
    /// Per-cohort demand multipliers not yet folded into the per-user
    /// weight/query columns — the lazy columnar sync for
    /// [`RoutingEvent::DemandScale`], drained by
    /// [`DynamicsEngine::columns`] so a surge epoch costs O(cohorts),
    /// not O(population).
    demand_mult: Vec<f64>,
    /// The `dynamics.load.*` ledger accumulators.
    load_ledger: LoadLedger,
}

/// The closed-loop load-management ledger of one engine run — what the
/// `dynamics.load.*` obs counters report, kept in float precision for
/// experiment tables.
///
/// Identities: `released_users ≤ shed_users` (a release gives back
/// weight a withhold recorded earlier, never more), and
/// `controller_rounds` counts only rounds that emitted at least one
/// effective action, so it is bounded by epochs × the controller's
/// `max_rounds`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadLedger {
    /// Total user weight carried by sessions at the moment the
    /// controller withheld them.
    pub shed_users: f64,
    /// Total recorded weight of withheld sessions the controller
    /// released again.
    pub released_users: f64,
    /// Controller decision rounds that applied at least one action.
    pub controller_rounds: u64,
    /// Overloaded-site time, summed as (announced sites over capacity)
    /// × (interval length) over the run, in site-milliseconds. Accrued
    /// whenever capacities are configured, controller or not — the
    /// do-nothing baseline of the `dynload` comparisons.
    pub overload_site_ms: f64,
    /// Unserved-demand exposure: Σ over intervals of (total user
    /// weight above capacity, summed across announced sites) ×
    /// (interval length), in user-milliseconds. The site count above
    /// is blind to magnitude — a policy that trades one overloaded
    /// site for another breaks even there no matter how much load it
    /// dumped; this integral is what that churn actually costs users.
    pub overload_user_ms: f64,
}

impl LoadLedger {
    /// Overloaded-site time in site-seconds.
    pub fn overload_site_s(&self) -> f64 {
        self.overload_site_ms / 1000.0
    }

    /// Unserved-demand exposure in user-seconds.
    pub fn overload_user_s(&self) -> f64 {
        self.overload_user_ms / 1000.0
    }
}

/// One cohort's current serving state, summarized for streaming
/// consumers (the `anycast-replay` driver): the member id range plus
/// the site and latency every member shares. O(cohorts) to snapshot,
/// however large the expanded population — the same cost contract as
/// the epoch loop itself.
#[derive(Debug, Clone, Copy)]
pub struct ServingCohort {
    /// First member's user id.
    pub start: u32,
    /// One past the last member's user id.
    pub end: u32,
    /// Serving site (original deployment id), or `None` while unserved.
    pub site: Option<SiteId>,
    /// Anycast RTT every member currently pays, ms (0 while unserved).
    pub latency_ms: f64,
}

/// A resumable run of one scenario: the exact epoch loop of
/// [`DynamicsEngine::run`], surrendered one epoch at a time so a
/// streaming consumer can interleave its own work — serving replayed
/// queries, say — between epochs while the engine's clock, overload
/// accrual, and controller rounds behave byte-identically to a plain
/// run.
///
/// Usage: [`EpochStepper::new`], then [`EpochStepper::step`] until it
/// returns `false` (peeking [`EpochStepper::next_time`] to schedule
/// work before each epoch applies), then [`EpochStepper::finish`] for
/// the [`Timeline`]. `run` itself is implemented as a stepper driven
/// with no between-epoch work, which is what pins the equivalence.
#[derive(Debug)]
pub struct EpochStepper {
    queue: EventQueue,
    timeline: Timeline,
    processed: u64,
    /// The most recent epoch's final record, rendering deferred by
    /// [`EpochStepper::step_pipelined`]. Flushed into the timeline by
    /// the next step (either flavor) or by [`EpochStepper::finish`].
    pending: Option<RecordSeed>,
}

impl EpochStepper {
    /// Starts a stepped run of `scenario` over `eng`. The timeline
    /// opens with the engine's `"init"` record, exactly as
    /// [`DynamicsEngine::run`] does.
    pub fn new(eng: &DynamicsEngine<'_>, scenario: &Scenario) -> Self {
        let mut timeline = Timeline::new(scenario.name.clone());
        timeline.records.push(eng.init_record().clone());
        Self {
            queue: EventQueue::from_events(scenario.events.iter().copied()),
            timeline,
            processed: 0,
            pending: None,
        }
    }

    /// When the next epoch will fire, or `None` when the scenario (and
    /// every engine-scheduled follow-up) is exhausted. Between-epoch
    /// work scheduled strictly before this instant observes the state
    /// the epoch is about to change.
    pub fn next_time(&self) -> Option<SimTime> {
        self.queue.next_time()
    }

    /// Applies the next epoch — every pending event at the next
    /// instant, as one batch — and appends its records to the
    /// timeline. Returns `false` (doing nothing) once the queue is
    /// exhausted.
    pub fn step(&mut self, eng: &mut DynamicsEngine<'_>) -> bool {
        self.flush_pending();
        let Some(batch) = self.pop_batch(eng) else { return false };
        self.timeline.records.extend(eng.epoch(&batch, &mut self.queue));
        obs::counter_add("dynamics.epochs", 1);
        true
    }

    /// [`EpochStepper::step`] with the record pipeline engaged: epoch
    /// N's final record renders (the weighted-median sort and derived
    /// fields) on a [`par::join`] worker *while* the engine applies
    /// epoch N+1 — batch apply, catchment recompute, group-diff
    /// invalidation, re-rank, and commit all overlap the rendering.
    /// The deferred record is a pure function of data the commit phase
    /// already extracted, so the finished timeline is byte-identical
    /// to the serial stepper at any thread count. The epoch's *final*
    /// record stays pending until the next step (or
    /// [`EpochStepper::finish`]) flushes it, so
    /// [`EpochStepper::records`] may lag one record behind mid-run.
    pub fn step_pipelined(&mut self, eng: &mut DynamicsEngine<'_>) -> bool {
        let Some(batch) = self.pop_batch(eng) else {
            self.flush_pending();
            return false;
        };
        let pending = self.pending.take();
        let queue = &mut self.queue;
        let (prev, (mut done, last)) = par::join(
            move || pending.map(RecordSeed::render),
            || eng.epoch_core(&batch, queue),
        );
        if let Some(r) = prev {
            self.timeline.records.push(r);
        }
        self.timeline.records.append(&mut done);
        self.pending = Some(last);
        obs::counter_add("dynamics.epochs", 1);
        true
    }

    /// Renders and appends the deferred record, if any.
    fn flush_pending(&mut self) {
        if let Some(seed) = self.pending.take() {
            self.timeline.records.push(seed.render());
        }
    }

    /// Pops every event sharing the next instant into one batch,
    /// accrues overloaded-site time for the interval ending now (loads
    /// were constant since the last epoch closed), advances the clock,
    /// and counts the events — the shared preamble of both stepping
    /// flavors. `None` once the queue is exhausted.
    fn pop_batch(&mut self, eng: &mut DynamicsEngine<'_>) -> Option<Vec<RoutingEvent>> {
        let first = self.queue.pop()?;
        // One epoch = every pending event at this exact instant.
        let mut batch = vec![first.event];
        while self
            .queue
            .next_time()
            .is_some_and(|t| t.as_ms().total_cmp(&first.at.as_ms()).is_eq())
        {
            batch.push(self.queue.pop().expect("peeked").event);
        }
        if eng.capacities.is_some() {
            let dt = first.at.as_ms() - eng.clock.now().as_ms();
            if dt > 0.0 {
                let (over, excess) = eng.overload_snapshot();
                if over > 0 {
                    eng.load_ledger.overload_site_ms += dt * over as f64;
                    eng.load_ledger.overload_user_ms += dt * excess;
                }
            }
        }
        eng.clock.advance_to(first.at);
        obs::counter_add("dynamics.events_processed", batch.len() as u64);
        self.processed += batch.len() as u64;
        Some(batch)
    }

    /// Events applied so far (the scenario's plus engine-scheduled
    /// follow-ups).
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Timeline records accumulated so far — the `"init"` record plus
    /// one or more per stepped epoch.
    pub fn records(&self) -> &[EpochRecord] {
        &self.timeline.records
    }

    /// Closes the run's ledgers (staged-drain and `dynamics.load.*`
    /// counters, exactly as [`DynamicsEngine::run`] emits them) and
    /// returns the timeline.
    pub fn finish(mut self, eng: &mut DynamicsEngine<'_>) -> Timeline {
        self.flush_pending();
        // Close the drain ledger: whatever is still draining when the
        // script runs out stays staged, so
        // `started = staged + aborted + completed` always balances.
        if !eng.drains.is_empty() {
            obs::counter_add("dynamics.drain.staged", eng.drains.len() as u64);
        }
        // Close the load ledger. Overload left standing after the last
        // event accrues nothing (there is no later instant to measure
        // to), which is why controller scenarios end with a restore
        // plus a trailing tick. Emitted only when a controller is
        // attached, so controller-less runs leave metrics untouched.
        if eng.controller.is_some() {
            obs::counter_add(
                "dynamics.load.shed_users",
                eng.load_ledger.shed_users.round() as u64,
            );
            obs::counter_add(
                "dynamics.load.released_users",
                eng.load_ledger.released_users.round() as u64,
            );
            obs::counter_add(
                "dynamics.load.overload_ms",
                eng.load_ledger.overload_site_ms.round() as u64,
            );
            obs::counter_add(
                "dynamics.load.overload_user_ms",
                eng.load_ledger.overload_user_ms.round() as u64,
            );
            obs::counter_add(
                "dynamics.load.controller_rounds",
                eng.load_ledger.controller_rounds,
            );
        }
        self.timeline
    }
}

impl<'g> DynamicsEngine<'g> {
    /// Builds an engine over the weighted sources as-is — one user row
    /// per source, weights and query volumes copied verbatim — and
    /// computes the initial steady-state assignment (the `"init"`
    /// epoch).
    pub fn new(
        graph: &'g AsGraph,
        deployment: Arc<AnycastDeployment>,
        model: LatencyModel,
        users: Vec<DynUser>,
        mode: RecomputeMode,
    ) -> Self {
        let counts = vec![1u32; users.len()];
        Self::new_expanded(graph, deployment, model, &users, &counts, 0, mode)
    }

    /// Builds an engine over an *expanded* population: source `i` of
    /// `base` fans out to `counts[i]` per-user rows occupying one
    /// contiguous user-id range (an expansion cohort). Each member
    /// carries an equal share of the source's weight; query volume is
    /// shared likewise but jittered ±25% per member from `seed`'s
    /// [`par::seed_for`] stream, so degraded-query accounting is not
    /// artificially uniform. A count of 1 copies the source verbatim,
    /// making [`DynamicsEngine::new`] the all-ones special case —
    /// byte-identical to the pre-columnar engine. The expansion is a
    /// pure function of `(base, counts, seed)`, identical at any
    /// `--threads` value; pair it with
    /// [`crate::columnar::expand_counts`] to apportion a target
    /// population across weighted sources.
    ///
    /// # Panics
    ///
    /// Panics when `counts` does not cover `base` or any count is zero.
    pub fn new_expanded(
        graph: &'g AsGraph,
        deployment: Arc<AnycastDeployment>,
        model: LatencyModel,
        base: &[DynUser],
        counts: &[u32],
        seed: u64,
        mode: RecomputeMode,
    ) -> Self {
        assert_eq!(base.len(), counts.len(), "one expansion count per source");
        let n_sites = deployment.sites.len();
        let population: usize = counts.iter().map(|&c| c as usize).sum();
        let mut weight = Vec::with_capacity(population);
        let mut qpd = Vec::with_capacity(population);
        let mut cohorts = Vec::with_capacity(base.len());
        for (u, &k) in base.iter().zip(counts) {
            assert!(k >= 1, "every source expands to at least one user");
            let start = weight.len() as u32;
            if k == 1 {
                weight.push(u.weight);
                qpd.push(u.queries_per_day);
            } else {
                let share_w = u.weight / k as f64;
                let share_q = u.queries_per_day / k as f64;
                for _ in 0..k {
                    let r = (par::seed_for(seed, weight.len() as u64) >> 11) as f64
                        / (1u64 << 53) as f64;
                    weight.push(share_w);
                    qpd.push(share_q * (0.75 + 0.5 * r));
                }
            }
            // Member-order sums, so the cohort totals are deterministic
            // (and exactly the source values in the count-1 case).
            let range = start as usize..weight.len();
            cohorts.push(Cohort {
                asn: u.asn,
                src_idx: graph.idx(u.asn) as u32,
                location: u.location,
                start,
                end: weight.len() as u32,
                weight: weight[range.clone()].iter().sum(),
                queries_per_day: qpd[range].iter().sum(),
            });
        }
        let total_weight = cohorts.iter().map(|c| c.weight).sum();
        let n_cohorts = cohorts.len();
        let mut eng = Self {
            graph,
            base: deployment,
            model,
            mode,
            cohorts,
            cols: UserColumns::with_users(weight, qpd),
            states: vec![UNSERVED; n_cohorts],
            stale: Vec::new(),
            index: GroupIndex::all_unkeyed(n_cohorts),
            orphans: Vec::new(),
            slice_users_total: 0,
            population_total: 0,
            total_weight,
            cache: RouteCache::new(),
            clock: SimClock::new(),
            alive: vec![true; n_sites],
            withdrawn_hosts: Vec::new(),
            lost_peerings: Vec::new(),
            groups: DetHashMap::default(),
            baseline_median_ms: None,
            init_record: None,
            capacities: None,
            drains: Vec::new(),
            next_gen: 0,
            swap_set: Vec::new(),
            current_swap: 0,
            controller: None,
            ctrl_withheld: vec![Vec::new(); n_sites],
            demand_mult: vec![1.0; n_cohorts],
            load_ledger: LoadLedger::default(),
        };
        let mut rec = eng.reassign("init", true);
        eng.baseline_median_ms = rec.median_ms;
        rec.inflation_ms = rec.median_ms.map(|_| 0.0);
        eng.init_record = Some(rec);
        eng
    }

    /// Fans one cohort's state across its column slices, eliding every
    /// column whose stored value already matches (members are uniform,
    /// so the first row decides for the slice). Runs only when the
    /// columnar view is materialized, never on the epoch path.
    fn write_cohort(cols: &mut UserColumns, range: std::ops::Range<usize>, st: &UserState) {
        let start = range.start;
        macro_rules! fill {
            ($col:ident, $val:expr) => {{
                let v = $val;
                if cols.$col[start] != v {
                    cols.$col[range.clone()].fill(v);
                }
            }};
        }
        fill!(site, st.site.map_or(NO_SITE, |s| s.0));
        fill!(via, st.via.map_or(NO_ASN, |a| a.0));
        match st.key {
            Some(k) => {
                fill!(key_class, k.class.code());
                fill!(key_path_len, k.path_len);
                fill!(key_exit_km, k.exit_km);
                fill!(key_host, k.host.0);
                fill!(key_scope, k.scope.code());
            }
            None => {
                fill!(key_class, NO_KEY);
                fill!(key_path_len, 0);
                fill!(key_exit_km, 0.0);
                fill!(key_host, 0);
                fill!(key_scope, 0);
            }
        }
    }

    /// The materialized columnar view of the population: every stale
    /// cohort's state is fanned across its member slices (per field,
    /// skipping columns that already match) before the columns are
    /// returned. Bulk consumers pay for the fan-out exactly when they
    /// ask for it; the epoch loop itself never writes a per-user row,
    /// which is what keeps epoch cost independent of population.
    pub fn columns(&mut self) -> &UserColumns {
        let mut stale = std::mem::take(&mut self.stale);
        stale.sort_unstable();
        stale.dedup();
        for ci in stale {
            let cohort = self.cohorts[ci as usize];
            Self::write_cohort(&mut self.cols, cohort.range(), &self.states[ci as usize]);
        }
        // Fold pending demand multipliers into the weight and query
        // columns (the `DemandScale` half of the lazy sync).
        for ci in 0..self.demand_mult.len() {
            let m = self.demand_mult[ci];
            if m != 1.0 {
                let range = self.cohorts[ci].range();
                for w in &mut self.cols.weight[range.clone()] {
                    *w *= m;
                }
                for q in &mut self.cols.queries_per_day[range] {
                    *q *= m;
                }
                self.demand_mult[ci] = 1.0;
            }
        }
        &self.cols
    }

    /// Attaches per-site load limits, turning every drain stage into a
    /// guarded step: a stage whose recompute would push any announced
    /// site past its capacity aborts the drain and rolls the
    /// escalation back instead of committing (the `drain-abort`
    /// epoch). Also populates `headroom_frac` on every epoch record,
    /// starting with the `"init"` one.
    ///
    /// # Panics
    ///
    /// Panics when `caps` does not cover every site of the deployment,
    /// or when a swap set is registered (the capacity table is keyed
    /// by site id, which a deployment swap redefines).
    pub fn with_capacities(mut self, caps: SiteCapacities) -> Self {
        assert_eq!(
            caps.len(),
            self.base.sites.len(),
            "capacity table must cover every site"
        );
        assert!(
            self.swap_set.is_empty(),
            "deployment swaps do not support per-site capacities"
        );
        self.capacities = Some(caps);
        let h = self.current_headroom();
        if let Some(rec) = self.init_record.as_mut() {
            rec.headroom_frac = h;
        }
        self
    }

    /// Registers the deployments this engine may swap between via
    /// [`RoutingEvent::RingPromote`] / [`RoutingEvent::RingDemote`] /
    /// [`RoutingEvent::DeploymentSwap`] events. `current` indexes the
    /// entry the engine was constructed over. When a swap fires, every
    /// piece of per-site state — announcement flags, active drains,
    /// per-user assignments, the group snapshot — is re-keyed through
    /// the entries' shared universe ids (see [`SwapDeployment`]).
    ///
    /// # Panics
    ///
    /// Panics when `current` is out of range, when entry `current`'s
    /// deployment is not the engine's own handle, when a universe list
    /// does not cover its deployment's sites or repeats an id, or when
    /// per-site capacities are configured (swaps and capacities are
    /// mutually exclusive: the capacity table is keyed by site id).
    pub fn with_swap_set(mut self, set: Vec<SwapDeployment>, current: usize) -> Self {
        assert!(current < set.len(), "current swap index {current} out of range");
        assert!(
            Arc::ptr_eq(&set[current].deployment, &self.base),
            "swap set entry {current} must be the engine's own deployment"
        );
        assert!(
            self.capacities.is_none(),
            "deployment swaps do not support per-site capacities"
        );
        for (i, e) in set.iter().enumerate() {
            assert_eq!(
                e.universe.len(),
                e.deployment.sites.len(),
                "universe of swap entry {i} must cover its sites"
            );
            let mut uni = e.universe.clone();
            uni.sort_unstable();
            uni.dedup();
            assert_eq!(uni.len(), e.universe.len(), "universe ids of swap entry {i} must be unique");
        }
        self.swap_set = set;
        self.current_swap = current;
        self
    }

    /// Index of the currently effective swap-set entry (0 when no swap
    /// set is registered).
    pub fn current_swap(&self) -> usize {
        self.current_swap
    }

    /// Attaches a closed-loop load controller. After every epoch's
    /// routing events settle (and any drain-abort check has run — the
    /// controller always observes committed state), the engine runs up
    /// to [`LoadController::max_rounds`] observe → decide → apply
    /// rounds at the same `SimTime`: each round's shed/release actions
    /// land as per-neighbor session withholds merged with the drain
    /// withhold sets, followed by one incremental recompute recorded
    /// as its own timeline row. A round with no actions ends the loop.
    /// The `dynamics.load.*` counters ledger the run.
    ///
    /// [`loadmgmt::NullController`] never acts, so attaching it leaves
    /// every record byte-identical to no controller at all.
    ///
    /// # Panics
    ///
    /// Panics when no capacities are configured: a controller without
    /// [`DynamicsEngine::with_capacities`] has no overload signal
    /// (this also keeps controllers and deployment swaps mutually
    /// exclusive, since capacities already exclude swap sets).
    pub fn with_controller(mut self, controller: Box<dyn LoadController>) -> Self {
        assert!(
            self.capacities.is_some(),
            "a load controller needs with_capacities first (no overload signal without limits)"
        );
        self.controller = Some(controller);
        self
    }

    /// Swaps (or detaches) the load-control policy mid-run — the
    /// controller-churn primitive chaos storms exercise: operators do
    /// change shedding policy under fire, and the engine must stay
    /// consistent across the handover. The withhold sets a previous
    /// controller installed stay in force (the new policy observes and
    /// may release them); the `dynamics.load.*` ledger keeps accruing
    /// across the swap. Takes effect from the next epoch's controller
    /// rounds.
    ///
    /// # Panics
    ///
    /// Panics when attaching `Some` controller without capacities,
    /// exactly as [`DynamicsEngine::with_controller`] does.
    pub fn set_controller(&mut self, controller: Option<Box<dyn LoadController>>) {
        if controller.is_some() {
            assert!(
                self.capacities.is_some(),
                "a load controller needs with_capacities first (no overload signal without limits)"
            );
        }
        self.controller = controller;
    }

    /// The `dynamics.load.*` ledger of this run so far: weight shed
    /// and released by the attached controller, effective controller
    /// rounds, and overloaded-site time (accrued whenever capacities
    /// are configured, controller or not).
    pub fn load_ledger(&self) -> &LoadLedger {
        &self.load_ledger
    }

    /// The current per-user assignment — serving site (original id),
    /// latency, and geographic path length, in user index order. The
    /// rollback oracle of the drain-abort tests: an aborted drain must
    /// leave this byte-identical to the pre-drain snapshot.
    pub fn user_snapshot(&self) -> Vec<(Option<SiteId>, f64, f64)> {
        let mut out = Vec::with_capacity(self.cols.len());
        for (c, st) in self.cohorts.iter().zip(&self.states) {
            for _ in c.range() {
                out.push((st.site, st.latency_ms, st.path_km));
            }
        }
        out
    }

    /// The current serving state of every expansion cohort — member id
    /// range plus the shared site and RTT — as one owned vector.
    /// O(cohorts) regardless of the expanded population, and borrow-free,
    /// so streaming consumers can snapshot it before taking the
    /// [`DynamicsEngine::columns`] borrow for per-user demand.
    pub fn serving_cohorts(&self) -> Vec<ServingCohort> {
        self.cohorts
            .iter()
            .zip(&self.states)
            .map(|(c, st)| ServingCohort {
                start: c.range().start as u32,
                end: c.range().end as u32,
                site: st.site,
                latency_ms: st.latency_ms,
            })
            .collect()
    }

    /// Expanded population size (number of per-user rows).
    pub fn population(&self) -> usize {
        self.cols.len()
    }

    /// Number of expansion cohorts (distinct weighted sources).
    pub fn cohort_count(&self) -> usize {
        self.cohorts.len()
    }

    /// Running invalidation ledger: `(slice_users, population)` summed
    /// over every non-init recompute — how many users sat in index
    /// slices the invalidation actually visited, vs how many a
    /// per-user scan would have walked. `slice_users < population`
    /// is the engine's proof of sub-linear epoch work.
    pub fn invalidation_ledger(&self) -> (u64, u64) {
        (self.slice_users_total, self.population_total)
    }

    /// The `"init"` steady-state epoch computed at construction.
    pub fn init_record(&self) -> &EpochRecord {
        self.init_record.as_ref().expect("set in new()")
    }

    /// Weighted median RTT of the initial steady state, ms.
    pub fn baseline_median_ms(&self) -> Option<f64> {
        self.baseline_median_ms
    }

    /// The base deployment the engine was built over.
    pub fn deployment(&self) -> &AnycastDeployment {
        &self.base
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Current user weight landing on each site, indexed by original
    /// site id. Scenario builders use this to aim events at the
    /// hottest (or coldest) site deterministically.
    pub fn site_loads(&self) -> Vec<f64> {
        let mut loads = vec![0.0; self.base.sites.len()];
        for (c, st) in self.cohorts.iter().zip(&self.states) {
            if let Some(s) = st.site {
                loads[s.0 as usize] += c.weight;
            }
        }
        loads
    }

    /// User weight entering the deployment through each host-adjacent
    /// neighbor AS, optionally restricted to the users one site
    /// currently serves — the shared accumulation behind
    /// [`DynamicsEngine::transit_loads`] (global) and the per-site
    /// drain plan. Insertion order is cohort order, so the map
    /// iterates deterministically.
    fn via_loads(&self, only_site: Option<SiteId>) -> DetHashMap<Asn, f64> {
        let mut loads: DetHashMap<Asn, f64> = DetHashMap::default();
        for (c, st) in self.cohorts.iter().zip(&self.states) {
            if let Some(s) = only_site {
                if st.site != Some(s) {
                    continue;
                }
            }
            if st.site.is_some() {
                if let Some(via) = st.via {
                    *loads.entry(via).or_default() += c.weight;
                }
            }
        }
        loads
    }

    /// Current user weight entering the deployment through each
    /// host-adjacent neighbor AS (the last interdomain session before
    /// the serving site), heaviest first, ties broken by ASN. Users
    /// inside a host AS cross no such session and are not counted.
    /// Scenario builders use this to aim peering events at sessions
    /// that actually carry traffic — withholding is per host neighbor,
    /// so only host-adjacent ASes are meaningful targets.
    pub fn transit_loads(&self) -> Vec<(Asn, f64)> {
        let mut out: Vec<(Asn, f64)> = self.via_loads(None).into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// User weight entering the deployment through each host-adjacent
    /// neighbor AS *among the users `site` currently serves* — one
    /// site's share of [`DynamicsEngine::global_via_loads`]. Load
    /// controllers and drain plans both shed in units of these entry
    /// sessions.
    pub fn site_via_loads(&self, site: SiteId) -> DetHashMap<Asn, f64> {
        self.via_loads(Some(site))
    }

    /// User weight entering the deployment through each host-adjacent
    /// neighbor AS, across all sites. Users inside a host AS cross no
    /// such session and are not counted.
    ///
    /// The per-site views partition this global view: every (neighbor,
    /// weight) entry is the sum of the per-site entries, because each
    /// served cohort has exactly one serving site.
    ///
    /// ```
    /// use anycast_dynamics::{DynUser, DynamicsEngine, RecomputeMode};
    /// use netsim::LatencyModel;
    /// use par::DetHashMap;
    /// use std::sync::Arc;
    /// use topology::{
    ///     AnycastDeployment, AnycastSite, Asn, InternetGenerator, SiteId, SiteScope,
    ///     TopologyConfig,
    /// };
    ///
    /// let mut net = InternetGenerator::generate(&TopologyConfig::small(111));
    /// let sites: Vec<AnycastSite> = net
    ///     .sample_hosters(3)
    ///     .iter()
    ///     .enumerate()
    ///     .map(|(i, h)| AnycastSite {
    ///         id: SiteId(i as u32),
    ///         name: format!("s{i}"),
    ///         host: *h,
    ///         location: net.graph.node(*h).pops[0],
    ///         scope: SiteScope::Global,
    ///     })
    ///     .collect();
    /// let dep = Arc::new(AnycastDeployment::new("doc", sites, vec![]));
    /// let users: Vec<DynUser> = net
    ///     .user_locations()
    ///     .iter()
    ///     .map(|l| DynUser {
    ///         asn: l.asn,
    ///         location: net.world.region(l.region).center,
    ///         weight: 1.0,
    ///         queries_per_day: 1_000.0,
    ///     })
    ///     .collect();
    /// let eng = DynamicsEngine::new(
    ///     &net.graph,
    ///     dep,
    ///     LatencyModel::default(),
    ///     users,
    ///     RecomputeMode::Incremental,
    /// );
    ///
    /// let global = eng.global_via_loads();
    /// let mut merged: DetHashMap<Asn, f64> = DetHashMap::default();
    /// for s in (0..3).map(SiteId) {
    ///     for (a, w) in eng.site_via_loads(s) {
    ///         *merged.entry(a).or_default() += w;
    ///     }
    /// }
    /// assert_eq!(merged.len(), global.len());
    /// for (a, w) in &global {
    ///     let m = merged.get(a).copied().unwrap_or(0.0);
    ///     assert!((m - w).abs() < 1e-9, "session {a} splits exactly across sites");
    /// }
    /// ```
    pub fn global_via_loads(&self) -> DetHashMap<Asn, f64> {
        self.via_loads(None)
    }

    /// Entry-session loads per site in one cohort pass: element `s`
    /// lists the `(neighbor, weight)` sessions of the users site `s`
    /// currently serves, lightest first (ties by ASN) — the shed
    /// ordering convention shared with drain plans, and the
    /// controller's observation. Cost is O(cohorts), independent of
    /// the expanded population.
    fn via_loads_by_site(&self) -> Vec<Vec<(Asn, f64)>> {
        let mut maps: Vec<DetHashMap<Asn, f64>> =
            vec![DetHashMap::default(); self.base.sites.len()];
        for (c, st) in self.cohorts.iter().zip(&self.states) {
            if let (Some(s), Some(via)) = (st.site, st.via) {
                *maps[s.0 as usize].entry(via).or_default() += c.weight;
            }
        }
        maps.into_iter()
            .map(|m| {
                let mut v: Vec<(Asn, f64)> = m.into_iter().collect();
                v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                v
            })
            .collect()
    }

    /// Runs `scenario` to completion and returns the per-epoch time
    /// series, led by the `"init"` epoch. Every event sharing one
    /// `SimTime` lands in the same epoch: one batched apply, one
    /// incremental recompute, one record.
    ///
    /// Equivalent to driving an [`EpochStepper`] to exhaustion with no
    /// work between epochs — which is exactly how it is implemented, so
    /// a stepped run with an idle consumer is byte-identical to this.
    pub fn run(&mut self, scenario: &Scenario) -> Timeline {
        let span = obs::span!("dynamics.scenario", name = scenario.name.as_str());
        let mut stepper = EpochStepper::new(self, scenario);
        while stepper.step(self) {}
        let processed = stepper.events_processed();
        let timeline = stepper.finish(self);
        span.add_items(processed);
        timeline
    }

    /// [`DynamicsEngine::run`] with epoch pipelining
    /// ([`EpochStepper::step_pipelined`]): epoch N's record rendering
    /// overlaps epoch N+1's batch apply, group-diff invalidation, and
    /// re-rank on a [`par::join`] worker. Byte-identical to `run` at
    /// any thread count; the `dynamics_pipeline` bench section prices
    /// the overlap.
    pub fn run_pipelined(&mut self, scenario: &Scenario) -> Timeline {
        let span = obs::span!("dynamics.scenario", name = scenario.name.as_str());
        let mut stepper = EpochStepper::new(self, scenario);
        while stepper.step_pipelined(self) {}
        let processed = stepper.events_processed();
        let timeline = stepper.finish(self);
        span.add_items(processed);
        timeline
    }

    /// Announced sites currently loaded past their capacity, and their
    /// total user weight above it.
    fn overload_snapshot(&self) -> (usize, f64) {
        let Some(caps) = self.capacities.as_ref() else { return (0, 0.0) };
        let loads = self.site_loads();
        let mut count = 0usize;
        let mut excess = 0.0f64;
        for s in self.announced_sites() {
            let over = loads[s.0 as usize] - caps.capacity(s);
            if over > 0.0 {
                count += 1;
                excess += over;
            }
        }
        (count, excess)
    }

    /// Applies one same-timestamp batch, recomputes, and — when drains
    /// escalated under configured capacities — runs the post-stage
    /// load check, rolling the whole escalation back into a
    /// `drain-abort` record if any announced site would exceed its
    /// limit. Follow-up drain events are scheduled only on commit.
    /// With a controller attached, its decision rounds then run at the
    /// same `SimTime` against the committed state, each appending one
    /// more record — so an epoch yields one record plus zero or more
    /// `ctrl[…]` rounds.
    fn epoch(&mut self, batch: &[RoutingEvent], queue: &mut EventQueue) -> Vec<EpochRecord> {
        let (mut records, last) = self.epoch_core(batch, queue);
        records.push(last.render());
        records
    }

    /// [`DynamicsEngine::epoch`] with the final record's rendering
    /// deferred: returns every earlier record rendered (controller
    /// epochs yield several) plus the last one as a [`RecordSeed`],
    /// which the pipelined stepper renders while the *next* epoch is
    /// applied.
    fn epoch_core(
        &mut self,
        batch: &[RoutingEvent],
        queue: &mut EventQueue,
    ) -> (Vec<EpochRecord>, RecordSeed) {
        let BatchOutcome { labels, mut notes, escalated, followups } = self.apply_batch(batch);
        let label = labels.join(" + ");
        // Snapshot the assignment state only when an abort is
        // possible. The per-user columns are not part of it: they are
        // a lazy view of `states`, and the stale marks accumulated by
        // the aborted recompute simply re-sync on the next access.
        let snap = (!escalated.is_empty() && self.capacities.is_some()).then(|| {
            (
                self.states.clone(),
                self.groups.clone(),
                self.index.clone(),
                self.orphans.clone(),
            )
        });
        let mut seed = self.reassign_seeded(&label, false);
        let mut committed = true;
        if let Some((states, groups, index, orphans)) = snap {
            let violation = {
                let caps = self.capacities.as_ref().expect("snapshot implies capacities");
                let loads = self.site_loads();
                caps.first_overloaded(&loads, self.announced_sites())
                    .map(|(site, load)| (site, load, caps.capacity(site)))
            };
            if let Some((site, load, cap)) = violation {
                // Roll back: restore the assignment state, cancel
                // every drain that escalated this epoch, and
                // recompute. The restored routing inputs equal the
                // pre-epoch ones, so the (deterministic) recompute
                // provably reproduces the pre-epoch assignment
                // byte-for-byte.
                self.states = states;
                self.groups = groups;
                self.index = index;
                self.orphans = orphans;
                for &s in &escalated {
                    self.abort_drain(s);
                }
                obs::counter_add("dynamics.drain.aborted", escalated.len() as u64);
                let aborts = escalated
                    .iter()
                    .map(|s| format!("drain-abort {s}"))
                    .collect::<Vec<_>>()
                    .join(" + ");
                seed = self.reassign_seeded(&format!("{label} => {aborts}"), false);
                notes.push(format!(
                    "drain aborted: {site} load {load:.3} exceeds cap {cap:.3}"
                ));
                committed = false;
            }
        }
        if committed {
            if !escalated.is_empty() {
                obs::counter_add("dynamics.drain.escalations", escalated.len() as u64);
            }
            for (at, ev) in followups {
                queue.push(at, ev);
            }
        }
        seed.headroom_frac = self.current_headroom();
        seed.note = notes.join("; ");
        let mut seeds = vec![seed];
        if self.controller.is_some() {
            self.controller_rounds(&mut seeds);
        }
        let last = seeds.pop().expect("at least the batch record");
        (seeds.into_iter().map(RecordSeed::render).collect(), last)
    }

    /// Runs the attached controller's observe → decide → apply rounds
    /// for the epoch that just closed, appending one record per
    /// effective round. Decisions read only per-cohort aggregates
    /// (loads, entry sessions), so a round's cost is independent of
    /// the expanded population.
    fn controller_rounds(&mut self, seeds: &mut Vec<RecordSeed>) {
        let mut ctrl = self.controller.take().expect("caller checked");
        for _ in 0..ctrl.max_rounds().max(1) {
            let loads = self.site_loads();
            let sessions = self.via_loads_by_site();
            let mut announced = vec![false; self.base.sites.len()];
            for s in self.announced_sites() {
                announced[s.0 as usize] = true;
            }
            let actions = {
                let caps = self.capacities.as_ref().expect("with_controller requires capacities");
                ctrl.decide(&LoadObservation {
                    loads: &loads,
                    caps,
                    sessions: &sessions,
                    withheld: &self.ctrl_withheld,
                    announced: &announced,
                })
            };
            if actions.is_empty() {
                break;
            }
            let (mut shed_w, mut rel_w) = (0.0, 0.0);
            let (mut shed_n, mut rel_n) = (0usize, 0usize);
            let mut detail: Vec<String> = Vec::new();
            for a in &actions {
                match *a {
                    LoadAction::Shed { site, session } => {
                        let set = &mut self.ctrl_withheld[site.0 as usize];
                        if set.binary_search_by_key(&session, |e| e.0).is_ok() {
                            continue; // already withheld: recorded no-op
                        }
                        let carried = sessions[site.0 as usize]
                            .iter()
                            .find(|(a2, _)| *a2 == session)
                            .map_or(0.0, |(_, w)| *w);
                        let pos = set.partition_point(|e| e.0 < session);
                        set.insert(pos, (session, carried));
                        shed_w += carried;
                        shed_n += 1;
                        detail.push(format!("shed {site}:{session}"));
                    }
                    LoadAction::Release { site, session } => {
                        let set = &mut self.ctrl_withheld[site.0 as usize];
                        if let Ok(pos) = set.binary_search_by_key(&session, |e| e.0) {
                            rel_w += set[pos].1;
                            rel_n += 1;
                            set.remove(pos);
                            detail.push(format!("release {site}:{session}"));
                        }
                    }
                }
            }
            if shed_n == 0 && rel_n == 0 {
                break; // every action was a no-op; nothing to recompute
            }
            self.load_ledger.shed_users += shed_w;
            self.load_ledger.released_users += rel_w;
            self.load_ledger.controller_rounds += 1;
            let label = match (shed_n, rel_n) {
                (s, 0) => format!("ctrl[{}] shed {s}", ctrl.name()),
                (0, r) => format!("ctrl[{}] release {r}", ctrl.name()),
                (s, r) => format!("ctrl[{}] shed {s} + release {r}", ctrl.name()),
            };
            let mut r = self.reassign_seeded(&label, false);
            r.headroom_frac = self.current_headroom();
            r.note = detail.join(" ");
            seeds.push(r);
        }
        self.controller = Some(ctrl);
    }

    /// Mutates announcement and drain state for one batched epoch.
    ///
    /// Precedence inside a batch (each category sorted, duplicates
    /// collapsed): opposing same-target pairs cancel first (recorded
    /// no-op), then site downs, site ups, prefix withdrawals, prefix
    /// restores, peering downs, peering ups, drain ends, drain stages,
    /// drain starts, and finally deployment swaps (demotions, then
    /// promotions, then general swaps; when several survive, the last
    /// wins and the rest are recorded as superseded). Site events
    /// co-batched with a swap therefore use *pre-swap* ids. A
    /// `SiteDown` on a draining site aborts its drain (the site failed
    /// mid-maintenance); a `SiteUp` on one completes it early. Stale
    /// generation-stamped drain follow-ups are recorded no-ops — and
    /// follow-ups are matched by generation stamp *alone*, because a
    /// swap may have re-keyed (or removed) the site id a queued
    /// follow-up was scheduled under.
    fn apply_batch(&mut self, batch: &[RoutingEvent]) -> BatchOutcome {
        let n_sites = self.base.sites.len();
        let check = |s: SiteId| {
            assert!((s.0 as usize) < n_sites, "event targets {s} outside the deployment");
            s
        };
        let n_swaps = self.swap_set.len();
        let check_swap = |t: u32| {
            assert!(
                (t as usize) < n_swaps,
                "swap event targets entry {t} but the swap set has {n_swaps} entries \
                 (register one with with_swap_set)"
            );
            t
        };
        let mut downs: Vec<SiteId> = Vec::new();
        let mut ups: Vec<SiteId> = Vec::new();
        let mut withdraws: Vec<Asn> = Vec::new();
        let mut restores: Vec<Asn> = Vec::new();
        let mut pdowns: Vec<Asn> = Vec::new();
        let mut pups: Vec<Asn> = Vec::new();
        let mut ends: Vec<(u64, SiteId)> = Vec::new();
        let mut stage_evs: Vec<(u64, SiteId)> = Vec::new();
        let mut starts: Vec<(SiteId, f64, u32, f64)> = Vec::new();
        let mut promotes: Vec<u32> = Vec::new();
        let mut demotes: Vec<u32> = Vec::new();
        let mut gswaps: Vec<u32> = Vec::new();
        let mut surges: Vec<(GeoPoint, f64, f64)> = Vec::new();
        let mut capscales: Vec<(SiteId, f64)> = Vec::new();
        let mut ticks = 0usize;
        for ev in batch {
            match *ev {
                RoutingEvent::SiteDown(s) => downs.push(check(s)),
                RoutingEvent::SiteUp(s) => ups.push(check(s)),
                RoutingEvent::PrefixWithdraw(a) => withdraws.push(a),
                RoutingEvent::PrefixRestore(a) => restores.push(a),
                RoutingEvent::PeeringDown(a) => pdowns.push(a),
                RoutingEvent::PeeringUp(a) => pups.push(a),
                // Drain follow-ups are keyed by generation, not site:
                // the carried site id predates any swap and is kept
                // only for labeling stale no-ops.
                RoutingEvent::DrainEnd { site, gen } => ends.push((gen, site)),
                RoutingEvent::DrainStage { site, gen } => stage_evs.push((gen, site)),
                RoutingEvent::DrainStart { site, stage_ms, stages, hold_ms } => {
                    starts.push((check(site), stage_ms, stages, hold_ms));
                }
                RoutingEvent::RingPromote { to } => promotes.push(check_swap(to)),
                RoutingEvent::RingDemote { to } => demotes.push(check_swap(to)),
                RoutingEvent::DeploymentSwap { to } => gswaps.push(check_swap(to)),
                RoutingEvent::DemandScale { center, radius_km, factor } => {
                    assert!(
                        factor.is_finite() && factor > 0.0,
                        "demand factor must be positive and finite, got {factor}"
                    );
                    assert!(radius_km >= 0.0, "demand radius must be non-negative");
                    surges.push((center, radius_km, factor));
                }
                RoutingEvent::CapacityScale { site, factor } => {
                    assert!(
                        factor.is_finite() && factor > 0.0,
                        "capacity factor must be positive and finite, got {factor}"
                    );
                    capscales.push((check(site), factor));
                }
                RoutingEvent::LoadTick => ticks += 1,
            }
        }
        for v in [&mut downs, &mut ups] {
            v.sort_unstable();
            v.dedup();
        }
        for v in [&mut withdraws, &mut restores, &mut pdowns, &mut pups] {
            v.sort_unstable();
            v.dedup();
        }
        ends.sort_unstable();
        ends.dedup_by_key(|e| e.0);
        stage_evs.sort_unstable();
        stage_evs.dedup_by_key(|e| e.0);
        starts.sort_by_key(|s| s.0);
        starts.dedup_by_key(|s| s.0);
        for v in [&mut promotes, &mut demotes, &mut gswaps] {
            v.sort_unstable();
            v.dedup();
        }

        let mut out = BatchOutcome {
            labels: Vec::new(),
            notes: Vec::new(),
            escalated: Vec::new(),
            followups: Vec::new(),
        };
        for s in cancel_pairs(&mut downs, &mut ups) {
            out.labels.push(format!("flap {s}"));
            out.notes.push(format!("down and up of {s} cancel (no-op)"));
        }
        for a in cancel_pairs(&mut withdraws, &mut restores) {
            out.labels.push(format!("prefix-flap {a}"));
            out.notes.push(format!("withdraw and restore of {a} cancel (no-op)"));
        }
        for a in cancel_pairs(&mut pdowns, &mut pups) {
            out.labels.push(format!("peering-flap {a}"));
            out.notes.push(format!("peering down and up of {a} cancel (no-op)"));
        }

        // Demand changes first: they move no announcements (the
        // routing precedence below is untouched), only cohort weights
        // and query volumes. The per-user columns sync lazily through
        // `demand_mult`, so a million-user surge writes O(cohorts)
        // here and O(members) only when the columnar view is next
        // materialized.
        for &(center, radius_km, factor) in &surges {
            let mut hit = 0u64;
            let mut delta = 0.0;
            for (ci, c) in self.cohorts.iter_mut().enumerate() {
                if c.location.distance_km(&center) <= radius_km {
                    delta += c.weight * (factor - 1.0);
                    c.weight *= factor;
                    c.queries_per_day *= factor;
                    self.demand_mult[ci] *= factor;
                    hit += 1;
                }
            }
            // Full member-order resum, not `+= delta`: keeps the total
            // bit-identical to a fresh engine built at the new demand.
            self.total_weight = self.cohorts.iter().map(|c| c.weight).sum();
            out.labels.push(format!("surge x{factor:.2}"));
            out.notes.push(format!(
                "demand x{factor:.3} within {radius_km:.0} km of ({:.1} {:.1}) hit {hit} cohorts ({delta:+.1} users)",
                center.lat(),
                center.lon(),
            ));
        }
        // Capacity changes are the supply-side twin of surges: no
        // announcement moves, only the headroom ledger. Applied in
        // batch order (same-site factors compose multiplicatively); on
        // an engine without capacities the event is a recorded no-op —
        // there is no table to scale.
        for &(site, factor) in &capscales {
            out.labels.push(format!("cap {site} x{factor:.2}"));
            match self.capacities.as_mut() {
                Some(caps) => {
                    caps.scale(site, factor);
                    out.notes.push(format!(
                        "capacity of {site} x{factor:.3} -> {:.1}",
                        caps.capacity(site)
                    ));
                }
                None => out.notes.push(format!(
                    "capacity scale on {site} ignored: engine tracks no capacities"
                )),
            }
        }
        if ticks > 0 {
            out.labels.push("tick".to_string());
        }

        for &s in &downs {
            if let Some(pos) = self.drains.iter().position(|d| d.site == s) {
                self.drains.remove(pos);
                obs::counter_add("dynamics.drain.aborted", 1);
                out.notes.push(format!("drain on {s} aborted: site failed"));
            }
            self.alive[s.0 as usize] = false;
            out.labels.push(format!("down {s}"));
        }
        for &s in &ups {
            if let Some(pos) = self.drains.iter().position(|d| d.site == s) {
                self.drains.remove(pos);
                obs::counter_add("dynamics.drain.completed", 1);
                out.notes.push(format!("drain on {s} closed by site-up"));
            }
            self.alive[s.0 as usize] = true;
            out.labels.push(format!("up {s}"));
        }
        for &a in &withdraws {
            insert_sorted(&mut self.withdrawn_hosts, a);
            out.labels.push(format!("withdraw {a}"));
        }
        for &a in &restores {
            remove_sorted(&mut self.withdrawn_hosts, a);
            out.labels.push(format!("restore {a}"));
        }
        for &a in &pdowns {
            insert_sorted(&mut self.lost_peerings, a);
            out.labels.push(format!("peering-down {a}"));
        }
        for &a in &pups {
            remove_sorted(&mut self.lost_peerings, a);
            out.labels.push(format!("peering-up {a}"));
        }
        for &(gen, carried) in &ends {
            match self.drains.iter().position(|d| d.gen == gen && d.holding) {
                Some(pos) => {
                    let s = self.drains[pos].site;
                    out.labels.push(format!("drain-end {s}"));
                    self.drains.remove(pos);
                    self.alive[s.0 as usize] = true;
                    obs::counter_add("dynamics.drain.completed", 1);
                }
                None => {
                    out.labels.push(format!("drain-end {carried}"));
                    out.notes.push(format!("stale drain-end for {carried} ignored"));
                }
            }
        }
        for &(gen, carried) in &stage_evs {
            match self.drains.iter().position(|d| d.gen == gen && !d.holding) {
                Some(pos) => {
                    let s = self.drains[pos].site;
                    out.labels.push(format!("drain-stage {s}"));
                    let f = self.escalate(s);
                    out.escalated.push(s);
                    out.followups.push(f);
                }
                None => {
                    out.labels.push(format!("drain-stage {carried}"));
                    out.notes.push(format!("stale drain-stage for {carried} ignored"));
                }
            }
        }
        for &(s, stage_ms, stages, hold_ms) in &starts {
            out.labels.push(format!("drain-start {s}"));
            if !self.alive[s.0 as usize] {
                out.notes.push(format!("drain-start on down {s} ignored"));
            } else if self.drains.iter().any(|d| d.site == s) {
                out.notes.push(format!("drain-start on already-draining {s} ignored"));
            } else {
                assert!(stages >= 1, "a drain needs at least one stage");
                assert!(stage_ms > 0.0 && hold_ms > 0.0, "drain timings must be positive");
                let gen = self.next_gen;
                self.next_gen += 1;
                let plan = self.drain_plan(s);
                let pos = self.drains.partition_point(|d| d.site < s);
                self.drains.insert(
                    pos,
                    DrainState {
                        site: s,
                        gen,
                        plan,
                        stages,
                        stage: 0,
                        stage_ms,
                        hold_ms,
                        withheld: Vec::new(),
                        holding: false,
                    },
                );
                obs::counter_add("dynamics.drain.started", 1);
                let f = self.escalate(s);
                out.escalated.push(s);
                out.followups.push(f);
            }
        }

        // Deployment swaps apply last, so every site event above was
        // interpreted against pre-swap ids. A same-timestamp
        // promote+demote pair targeting one entry cancels into a
        // recorded no-op; among several survivors the last (demotes,
        // then promotes, then general swaps, each ascending) wins.
        for t in cancel_pairs(&mut promotes, &mut demotes) {
            let name = self.swap_name(t);
            out.labels.push(format!("ring-flap {name}"));
            out.notes.push(format!("promote and demote to {name} cancel (no-op)"));
        }
        let survivors: Vec<(&str, u32)> = demotes
            .iter()
            .map(|&t| ("demote", t))
            .chain(promotes.iter().map(|&t| ("promote", t)))
            .chain(gswaps.iter().map(|&t| ("swap", t)))
            .collect();
        for (i, &(verb, t)) in survivors.iter().enumerate() {
            let name = self.swap_name(t);
            out.labels.push(format!("{verb} {name}"));
            if i + 1 < survivors.len() {
                out.notes
                    .push(format!("{verb} to {name} superseded by a later swap in this epoch"));
            }
        }
        if let Some(&(_, t)) = survivors.last() {
            if t as usize == self.current_swap {
                obs::counter_add("dynamics.swap.noop", 1);
                out.notes.push(format!(
                    "swap to the current ring {} (ledgered no-op)",
                    self.swap_name(t)
                ));
            } else {
                self.apply_swap(t as usize, &mut out);
            }
        }
        out
    }

    /// Display name of swap-set entry `t`.
    fn swap_name(&self, t: u32) -> String {
        self.swap_set[t as usize].deployment.name.clone()
    }

    /// Replaces the effective deployment with swap-set entry `to`,
    /// re-keying every piece of per-site state — announcement flags,
    /// active drains, per-user assignments, and the group snapshot —
    /// across the universe-id site remap. A drain of a site that
    /// leaves the deployment is cancelled and ledgered as aborted; a
    /// user whose site leaves keeps the stored candidate key with
    /// `site: None`, the marker the group diff's rule 0 re-ranks.
    fn apply_swap(&mut self, to: usize, out: &mut BatchOutcome) {
        assert!(
            self.capacities.is_none(),
            "deployment swaps do not support per-site capacities"
        );
        let old_len = self.base.sites.len();
        let new_dep = Arc::clone(&self.swap_set[to].deployment);
        let new_len = new_dep.sites.len();
        // Forward map, old site id → new site id, via shared universe
        // ids; `None` marks a site leaving the deployment.
        let mut uni_to_new: DetHashMap<u32, SiteId> = DetHashMap::default();
        for (i, &u) in self.swap_set[to].universe.iter().enumerate() {
            uni_to_new.insert(u, SiteId(i as u32));
        }
        let fwd: Vec<Option<SiteId>> = self.swap_set[self.current_swap]
            .universe
            .iter()
            .map(|u| uni_to_new.get(u).copied())
            .collect();

        // Ledger classification is by what actually happened to the
        // site count — robust to mislabeled events and general swaps —
        // so `promotions + demotions = swap epochs` always balances.
        obs::counter_add(
            if new_len >= old_len { "dynamics.swap.promotions" } else { "dynamics.swap.demotions" },
            1,
        );
        obs::counter_add("dynamics.swap.epochs", 1);

        // Drains: survivors carry their state (and generation stamp —
        // follow-ups match by stamp alone) under the new id; a drain
        // of a departing site is cancelled and ledgered.
        let mut kept: Vec<DrainState> = Vec::new();
        for mut d in std::mem::take(&mut self.drains) {
            match fwd[d.site.0 as usize] {
                Some(ns) => {
                    d.site = ns;
                    kept.push(d);
                }
                None => {
                    obs::counter_add("dynamics.drain.aborted", 1);
                    out.notes.push(format!(
                        "drain on {} cancelled: site left the deployment (ledgered)",
                        d.site
                    ));
                }
            }
        }
        kept.sort_by_key(|d| d.site);
        self.drains = kept;

        // Announcement flags: survivors keep theirs (a downed site
        // stays down across the swap), new arrivals announce. A site
        // that leaves forfeits its state — re-entering on a later swap
        // starts alive.
        let mut alive = vec![true; new_len];
        for (i, m) in fwd.iter().enumerate() {
            if let Some(ns) = m {
                alive[ns.0 as usize] = self.alive[i];
            }
        }
        self.alive = alive;

        // Per-user assignments: surviving cohorts re-key their stored
        // site in place; a cohort whose site left the deployment keeps
        // its stored key with the site cleared — the rule-0 orphan
        // marker — and joins the orphan set the next recompute
        // re-ranks unconditionally. Both shapes go stale for the lazy
        // column sync.
        let mut rekeyed = 0u64;
        for (c, cohort) in self.cohorts.iter().enumerate() {
            let Some(s) = self.states[c].site else {
                continue;
            };
            match fwd[s.0 as usize] {
                Some(ns) => {
                    self.states[c].site = Some(ns);
                    self.stale.push(c as u32);
                    rekeyed += u64::from(cohort.len());
                }
                None => {
                    self.states[c].site = None;
                    self.stale.push(c as u32);
                    // `reassign` cleared `orphans` last epoch and one
                    // swap applies per epoch, so a plain push keeps the
                    // set sorted and duplicate-free.
                    self.orphans.push(c as u32);
                }
            }
        }
        obs::counter_add("dynamics.swap.users_rekeyed", rekeyed);

        // Group snapshot: remap hosted-site and drain-footprint ids,
        // dropping departed sites. After a pure demotion the surviving
        // group then compares equal to the freshly computed one, so
        // the following recompute re-ranks exactly the rule-0 users.
        for snap in self.groups.values_mut() {
            snap.sites = snap.sites.iter().filter_map(|s| fwd[s.0 as usize]).collect();
            snap.sites.sort_unstable();
            snap.drains = snap
                .drains
                .iter()
                .filter_map(|(s, w)| fwd[s.0 as usize].map(|ns| (ns, w.clone())))
                .collect();
            snap.drains.sort_by_key(|(s, _)| *s);
        }

        self.base = new_dep;
        self.current_swap = to;
        // Controller withholds cannot coexist with swaps (a controller
        // requires capacities, which exclude swap sets), so the table
        // is all-empty here — just re-size it to the new site space.
        debug_assert!(self.ctrl_withheld.iter().all(Vec::is_empty));
        self.ctrl_withheld = vec![Vec::new(); self.base.sites.len()];
    }

    /// Advances `site`'s drain by one stage and returns the follow-up
    /// to schedule *if the epoch commits*: the next generation-stamped
    /// [`RoutingEvent::DrainStage`] for a partial stage, or the
    /// [`RoutingEvent::DrainEnd`] once the final stage withdraws the
    /// site for its maintenance hold.
    fn escalate(&mut self, site: SiteId) -> (SimTime, RoutingEvent) {
        let now = self.clock.now();
        let idx = self
            .drains
            .iter()
            .position(|d| d.site == site)
            .expect("escalating a live drain");
        let d = &mut self.drains[idx];
        d.stage += 1;
        if d.stage < d.stages {
            // Partial stage k of n: withhold the lightest
            // ceil(k·len/(n−1)) neighbor sessions, so the last partial
            // stage covers the whole plan and the final stage only
            // removes the remaining intra-host traffic.
            let len = d.plan.len();
            let div = (d.stages - 1) as usize;
            let cut = ((d.stage as usize * len) + div - 1) / div;
            d.withheld = d.plan[..cut.min(len)].to_vec();
            d.withheld.sort_unstable();
            (now.plus_ms(d.stage_ms), RoutingEvent::DrainStage { site, gen: d.gen })
        } else {
            d.withheld.clear();
            d.holding = true;
            let (gen, hold) = (d.gen, d.hold_ms);
            self.alive[site.0 as usize] = false;
            (now.plus_ms(hold), RoutingEvent::DrainEnd { site, gen })
        }
    }

    /// Cancels `site`'s drain outright: the withholds disappear and,
    /// if the final stage had already withdrawn the site, it
    /// re-announces.
    fn abort_drain(&mut self, site: SiteId) {
        if let Some(pos) = self.drains.iter().position(|d| d.site == site) {
            let d = self.drains.remove(pos);
            if d.holding {
                self.alive[site.0 as usize] = true;
            }
        }
    }

    /// The per-neighbor withhold plan for draining `site`: every AS
    /// adjacent to the site's host, ordered lightest current traffic
    /// first (ties by ASN) so early stages shift the smallest
    /// catchment slices. Load is measured at plan time from the users
    /// `site` currently serves through each entry session.
    fn drain_plan(&self, site: SiteId) -> Vec<Asn> {
        let host = self.base.sites[site.0 as usize].host;
        let hidx = self.graph.idx(host);
        let mut neigh: Vec<Asn> = self
            .graph
            .adjacency(hidx)
            .iter()
            .map(|a| self.graph.node_at(a.neighbor).asn)
            .collect();
        neigh.sort_unstable();
        neigh.dedup();
        let load = self.via_loads(Some(site));
        neigh.sort_by(|a, b| {
            let la = load.get(a).copied().unwrap_or(0.0);
            let lb = load.get(b).copied().unwrap_or(0.0);
            la.total_cmp(&lb).then(a.cmp(b))
        });
        neigh
    }

    /// Sessions currently withheld at `site`: the drain withhold set
    /// and the controller withhold set merged (sorted, deduplicated).
    /// Both the effective deployment and the group-snapshot drain
    /// footprint go through this, so a controller withhold is as
    /// visible to the group-diff soundness argument as a drain stage.
    fn withheld_sessions(&self, site: SiteId) -> Vec<Asn> {
        let mut w: Vec<Asn> = self
            .drains
            .iter()
            .find(|d| d.site == site)
            .map(|d| d.withheld.clone())
            .unwrap_or_default();
        for &(a, _) in &self.ctrl_withheld[site.0 as usize] {
            insert_sorted(&mut w, a);
        }
        w
    }

    /// Original ids of the sites currently announced (alive and host
    /// not withdrawn) — the survivors a drain's load check protects.
    fn announced_sites(&self) -> Vec<SiteId> {
        self.base
            .sites
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                self.alive[*i] && self.withdrawn_hosts.binary_search(&s.host).is_err()
            })
            .map(|(_, s)| s.id)
            .collect()
    }

    /// Worst relative headroom across announced sites under the
    /// current loads, when capacities are configured.
    fn current_headroom(&self) -> Option<f64> {
        let caps = self.capacities.as_ref()?;
        caps.min_headroom_frac(&self.site_loads(), self.announced_sites())
    }

    /// The deployment as currently announced: alive sites of
    /// non-withdrawn hosts, re-id'd densely, with lost peerings merged
    /// into the withhold list. `None` when nothing is announced. The
    /// second element maps dense ids back to original ids.
    fn effective_deployment(&self) -> Option<(Arc<AnycastDeployment>, Vec<SiteId>)> {
        let mut sites: Vec<AnycastSite> = Vec::new();
        let mut orig: Vec<SiteId> = Vec::new();
        for (i, s) in self.base.sites.iter().enumerate() {
            if self.alive[i] && self.withdrawn_hosts.binary_search(&s.host).is_err() {
                orig.push(s.id);
                let mut s = s.clone();
                s.id = SiteId(sites.len() as u32);
                sites.push(s);
            }
        }
        if sites.is_empty() {
            return None;
        }
        let mut withhold = self.base.withhold.clone();
        withhold.extend(self.lost_peerings.iter().copied());
        withhold.sort_unstable();
        withhold.dedup();
        let mut dep = AnycastDeployment::new(self.base.name.clone(), sites, withhold);
        dep.origin_as = self.base.origin_as;
        dep.direct_hosts = self.base.direct_hosts.clone();
        // Active withhold sets — partial drains merged with controller
        // sheds — translated to dense ids (`orig` is ascending).
        // Holding drains have no withheld set: their site is simply
        // absent.
        for (dense, &s) in orig.iter().enumerate() {
            let withheld = self.withheld_sessions(s);
            if withheld.is_empty() {
                continue;
            }
            dep.site_drains.push(SiteDrain { site: SiteId(dense as u32), withheld });
        }
        Some((Arc::new(dep), orig))
    }

    /// Recomputes the catchment over the effective deployment, re-ranks
    /// the affected users (all of them under [`RecomputeMode::Full`] or
    /// at init), and closes the epoch. Composed from the four phases —
    /// [`DynamicsEngine::plan_reassign`] (catchment + group diff +
    /// invalidation selection), [`DynamicsEngine::rank_plan`] (the
    /// parallel re-rank), [`DynamicsEngine::commit_plan`] (state
    /// writes + counters), and [`RecordSeed::render`] — run back to
    /// back.
    fn reassign(&mut self, label: &str, is_init: bool) -> EpochRecord {
        self.reassign_seeded(label, is_init).render()
    }

    /// [`DynamicsEngine::reassign`] up to (but not including) the
    /// record rendering: the returned seed owns everything the record
    /// needs, so the caller may render it later — or elsewhere.
    fn reassign_seeded(&mut self, label: &str, is_init: bool) -> RecordSeed {
        let plan = self.plan_reassign(is_init);
        let results = self.rank_plan(&plan);
        self.commit_plan(plan, &results, label, is_init)
    }

    /// Phase 1 of a recompute: the new catchment over the effective
    /// deployment, its origin-group snapshot in original site ids, and
    /// the affected-cohort selection (the group diff and invalidation
    /// rules 0–3). Mutates only the route cache; every assignment
    /// write waits for [`DynamicsEngine::commit_plan`].
    fn plan_reassign(&mut self, is_init: bool) -> ReassignPlan<'g> {
        let population = self.cols.len();
        // New catchment over whatever is still announced.
        let (catchment, dense_to_orig) = match self.effective_deployment() {
            Some((dep, orig)) => {
                (Some(Catchment::compute_shared(self.graph, dep, &mut self.cache)), orig)
            }
            None => (None, Vec::new()),
        };
        // Snapshot its origin groups in original site ids.
        let mut new_groups: DetHashMap<(Asn, ExportScope), GroupSnap> = DetHashMap::default();
        if let Some(c) = &catchment {
            for (host, scope) in c.group_keys() {
                let routes = c.group_routes(host, scope).expect("listed group");
                let mut sites: Vec<SiteId> = c
                    .group_sites(host, scope)
                    .expect("listed group")
                    .iter()
                    .map(|s| dense_to_orig[s.0 as usize])
                    .collect();
                sites.sort_unstable();
                let drains: Vec<(SiteId, Vec<Asn>)> = sites
                    .iter()
                    .filter_map(|s| {
                        let w = self.withheld_sessions(*s);
                        (!w.is_empty()).then_some((*s, w))
                    })
                    .collect();
                new_groups.insert((host, scope), GroupSnap { routes, sites, drains });
            }
        }

        // Who must be re-ranked? Selection walks the *group index*,
        // not the population: cohorts of a group the epoch provably
        // did not touch are skipped without visiting their slices, so
        // `slice_users` — the user count under slices actually
        // visited — is the honest measure of invalidation work.
        let n_cohorts = self.cohorts.len();
        let mut slice_users = 0u64;
        let affected: Vec<u32> = if is_init || self.mode == RecomputeMode::Full {
            slice_users = population as u64;
            (0..n_cohorts as u32).collect()
        } else {
            // Diff the group sets. A group whose routes Arc, hosted
            // sites, and drain footprint all survived unchanged ranks
            // and materializes exactly as before. A group whose ONLY
            // change is its hosted-site list (the site up/down and
            // deployment-swap shape) is diffed site-by-site: its own
            // users re-rank only when their stored site was removed or
            // an added site beats it on `materialize`'s
            // nearest-to-entry tie-break, and it challenges other
            // groups' users only when sites were added (shrinking a
            // group cannot improve it). Everything else invalidates
            // its own users wholesale and may challenge others.
            let mut invalidated: DetHashSet<(Asn, ExportScope)> = DetHashSet::default();
            let mut site_diffed: DetHashMap<(Asn, ExportScope), (Vec<SiteId>, Vec<SiteId>)> =
                DetHashMap::default();
            let mut challengers: Vec<((Asn, ExportScope), Arc<OriginRoutes>)> = Vec::new();
            for (k, old) in &self.groups {
                match new_groups.get(k) {
                    None => {
                        invalidated.insert(*k);
                    }
                    Some(new) => {
                        if Arc::ptr_eq(&old.routes, &new.routes) && old.drains == new.drains {
                            if old.sites != new.sites {
                                let added: Vec<SiteId> = new
                                    .sites
                                    .iter()
                                    .copied()
                                    .filter(|s| old.sites.binary_search(s).is_err())
                                    .collect();
                                let removed: Vec<SiteId> = old
                                    .sites
                                    .iter()
                                    .copied()
                                    .filter(|s| new.sites.binary_search(s).is_err())
                                    .collect();
                                if !added.is_empty() {
                                    challengers.push((*k, Arc::clone(&new.routes)));
                                }
                                site_diffed.insert(*k, (added, removed));
                            }
                        } else {
                            invalidated.insert(*k);
                            challengers.push((*k, Arc::clone(&new.routes)));
                        }
                    }
                }
            }
            for (k, new) in &new_groups {
                if !self.groups.contains_key(k) {
                    challengers.push((*k, Arc::clone(&new.routes)));
                }
            }
            let base = &self.base;
            let mut out: Vec<u32> = Vec::new();
            // Rule 0: a stored key with no site only arises when a
            // swap removed the cohort's site — nothing else would
            // re-rank them. The swap recorded exactly those cohorts.
            for &c in &self.orphans {
                slice_users += u64::from(self.cohorts[c as usize].len());
                out.push(c);
            }
            // Rule 3: unserved cohorts re-rank when an added or
            // changed group now has any route at their source. With no
            // challengers the bucket is provably untouched and its
            // slices are never visited.
            if !challengers.is_empty() {
                for &c in &self.index.unkeyed {
                    let cohort = &self.cohorts[c as usize];
                    slice_users += u64::from(cohort.len());
                    let src = cohort.src_idx as usize;
                    if challengers.iter().any(|(_, r)| r.route_at(src).is_some()) {
                        out.push(c);
                    }
                }
            }
            // Rules 1 and 2, per *stored-key group slice*: a group
            // that is not invalidated, not site-diffed, and challenged
            // by nobody else is skipped wholesale — this is where
            // epoch cost decouples from population.
            for (gk, members) in &self.index.groups {
                let inv = invalidated.contains(gk);
                let sd = site_diffed.get(gk);
                let challenged = challengers.iter().any(|(ck, _)| ck != gk);
                if !inv && sd.is_none() && !challenged {
                    continue;
                }
                for &c in members {
                    // A swap-orphaned cohort keeps its key columns, so
                    // it still sits in this slice; rule 0 already
                    // collected (and counted) it.
                    if self.orphans.binary_search(&c).is_ok() {
                        continue;
                    }
                    let cohort = &self.cohorts[c as usize];
                    slice_users += u64::from(cohort.len());
                    let st = &self.states[c as usize];
                    let key = st.key.expect("keyed slice member");
                    let Some(s) = st.site.filter(|_| !inv) else {
                        out.push(c);
                        continue;
                    };
                    if let Some((added, removed)) = sd {
                        if removed.binary_search(&s).is_ok() {
                            out.push(c);
                            continue;
                        }
                        // An added site takes over exactly when it
                        // beats the stored one on (distance to the
                        // stored entry point, site id) —
                        // `materialize`'s tie-break. Comparing
                        // original ids is order-isomorphic to the
                        // dense comparison because dense re-ids
                        // preserve ascending order.
                        let e = st.entry.expect("served member has an entry");
                        let ds = base.sites[s.0 as usize].location.distance_km(&e);
                        if added.iter().any(|&a| {
                            let da = base.sites[a.0 as usize].location.distance_km(&e);
                            da < ds || (da == ds && a < s)
                        }) {
                            out.push(c);
                            continue;
                        }
                    }
                    // The cohort's own group never challenges its own
                    // members here: the site-diff rule above already
                    // decided for them.
                    let src = cohort.src_idx as usize;
                    if challengers.iter().any(|(ck, r)| {
                        *ck != *gk
                            && r.route_at(src)
                                .is_some_and(|nr| key.challenged_by(nr.class, nr.path_len))
                    }) {
                        out.push(c);
                    }
                }
            }
            // The three sources are disjoint; the sort restores the
            // ascending cohort order every downstream accumulation
            // (and therefore byte-level determinism) depends on.
            out.sort_unstable();
            out.dedup();
            out
        };
        ReassignPlan { catchment, dense_to_orig, new_groups, affected, slice_users }
    }

    /// Phase 2 of a recompute: re-rank the planned cohorts on the
    /// deterministic parallel layer; index order of `plan.affected`
    /// fixes the merge order. One BGP decision per cohort serves every
    /// member: the decision sees only `(source AS, location)`, which
    /// members share. Reads the engine immutably.
    fn rank_plan(&self, plan: &ReassignPlan<'_>) -> Vec<Option<UserState>> {
        let cohorts = &self.cohorts;
        let model = &self.model;
        let dense_to_orig = &plan.dense_to_orig;
        let affected = &plan.affected;
        match &plan.catchment {
            Some(c) => par::ordered_map(affected, |_, &ci| {
                let u = &cohorts[ci as usize];
                c.assign_with_key(u.asn, &u.location).map(|(a, key)| {
                    let ms = model
                        .median_rtt_ms(&PathProfile::from_assignment(&a, LastMile::Broadband));
                    // The withhold-relevant session: the AS the host
                    // announced to on this path (the hop right before
                    // the host; None when the user sits inside it).
                    let host = c.deployment().site(a.site).host;
                    let via = a
                        .as_path
                        .iter()
                        .position(|&n| n == host)
                        .and_then(|p| p.checked_sub(1))
                        .map(|p| a.as_path[p]);
                    UserState {
                        site: Some(dense_to_orig[a.site.0 as usize]),
                        key: Some(key),
                        via,
                        entry: Some(a.entry),
                        latency_ms: ms,
                        path_km: a.path_km,
                    }
                })
            }),
            None => vec![None; affected.len()],
        }
    }

    /// Phases 3 and 4 of a recompute: store each rank result in the
    /// per-cohort state table, mark changed cohorts stale for the lazy
    /// column sync, re-home each cohort in the group index, adopt the
    /// new group snapshot, collect the epoch aggregates (one
    /// O(cohorts) pass), and emit the recompute counters. Returns the
    /// record as a [`RecordSeed`]; the weighted-median sort and the
    /// fields derived from it are deferred to [`RecordSeed::render`].
    fn commit_plan(
        &mut self,
        plan: ReassignPlan<'_>,
        results: &[Option<UserState>],
        label: &str,
        is_init: bool,
    ) -> RecordSeed {
        let ReassignPlan { new_groups, affected, slice_users, .. } = plan;
        let population = self.cols.len();
        let mut shifted = 0.0;
        let mut shifted_qpd = 0.0;
        for (&ci, &res) in affected.iter().zip(results) {
            let cohort = self.cohorts[ci as usize];
            let old = self.states[ci as usize];
            let new = res.unwrap_or(UNSERVED);
            if !is_init && new.site != old.site {
                shifted += cohort.weight;
                shifted_qpd += cohort.queries_per_day;
            }
            if new != old {
                self.stale.push(ci);
            }
            self.index.move_cohort(ci, old.key.map(|k| k.group()), new.key.map(|k| k.group()));
            self.states[ci as usize] = new;
        }
        self.groups = new_groups;
        self.orphans.clear();

        // Epoch aggregates in ascending cohort order — per-cohort,
        // since every member shares its cohort's assignment, so the
        // cost stays O(cohorts) at any population. Only the raw
        // points are collected here; the median sort lives in
        // `RecordSeed::render` so the pipelined stepper can overlap it
        // with the next epoch.
        let mut latency_pts = Vec::new();
        let mut served_w = 0.0;
        let mut path_sum = 0.0;
        for (c, st) in self.cohorts.iter().zip(&self.states) {
            if st.site.is_some() {
                served_w += c.weight;
                path_sum += st.path_km * c.weight;
                latency_pts.push((st.latency_ms, c.weight));
            }
        }
        // The recompute ledger stays in *user* units: an affected
        // cohort recomputes once but stands in for all its members.
        let recomputed: u64 =
            affected.iter().map(|&ci| u64::from(self.cohorts[ci as usize].len())).sum();
        let reused = population as u64 - recomputed;
        obs::counter_add("dynamics.assign_recomputed", recomputed);
        obs::counter_add("dynamics.assign_reused", reused);
        // What a full recompute would have paid for this event — the
        // denominator of the incremental savings.
        obs::counter_add("dynamics.full_equiv", population as u64);
        if !is_init {
            obs::counter_add("dynamics.invalidation.slice_users", slice_users);
            obs::counter_add("dynamics.invalidation.population", population as u64);
            self.slice_users_total += slice_users;
            self.population_total += population as u64;
        }
        RecordSeed {
            t_ms: self.clock.now().as_ms(),
            label: label.to_string(),
            shifted,
            shifted_qpd,
            served_w,
            path_sum,
            latency_pts,
            recomputed,
            reused,
            total_weight: self.total_weight,
            baseline_median_ms: self.baseline_median_ms,
            headroom_frac: None,
            note: String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{InternetGenerator, SiteScope, TopologyConfig};

    fn world(n_sites: usize) -> (topology::gen::Internet, Arc<AnycastDeployment>, Vec<DynUser>) {
        let mut net = InternetGenerator::generate(&TopologyConfig::small(111));
        let hosts = net.sample_hosters(n_sites);
        let sites: Vec<AnycastSite> = hosts
            .iter()
            .enumerate()
            .map(|(i, h)| AnycastSite {
                id: SiteId(i as u32),
                name: format!("s{i}"),
                host: *h,
                location: net.graph.node(*h).pops[0],
                scope: SiteScope::Global,
            })
            .collect();
        let dep = AnycastDeployment::new("dyn-test", sites, vec![]);
        let users: Vec<DynUser> = net
            .user_locations()
            .iter()
            .map(|l| DynUser {
                asn: l.asn,
                location: net.world.region(l.region).center,
                weight: 1.0,
                queries_per_day: 1_000.0,
            })
            .collect();
        (net, Arc::new(dep), users)
    }

    fn engine<'g>(
        net: &'g topology::gen::Internet,
        dep: &Arc<AnycastDeployment>,
        users: &[DynUser],
        mode: RecomputeMode,
    ) -> DynamicsEngine<'g> {
        DynamicsEngine::new(
            &net.graph,
            Arc::clone(dep),
            LatencyModel::default(),
            users.to_vec(),
            mode,
        )
    }

    fn hottest_site(e: &DynamicsEngine<'_>) -> SiteId {
        let loads = e.site_loads();
        let i = loads
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        SiteId(i as u32)
    }

    /// The incremental path must match the full-recompute oracle on
    /// every metric of every epoch, while provably reusing work.
    #[test]
    fn incremental_matches_full_recompute() {
        let (net, dep, users) = world(4);
        let mut inc = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let mut full = engine(&net, &dep, &users, RecomputeMode::Full);
        let target = hottest_site(&inc);
        let scenario =
            Scenario::site_flap("flap", target, SimTime::from_secs(60.0), 600_000.0, 3, 30_000.0, 7);
        let ti = inc.run(&scenario);
        let tf = full.run(&scenario);
        assert_eq!(ti.records.len(), tf.records.len());
        for (a, b) in ti.records.iter().zip(&tf.records) {
            assert_eq!(a.t_ms, b.t_ms);
            assert_eq!(a.event, b.event);
            assert_eq!(a.shifted, b.shifted, "at {}", a.event);
            assert_eq!(a.unserved_frac, b.unserved_frac, "at {}", a.event);
            assert_eq!(a.median_ms, b.median_ms, "at {}", a.event);
            assert_eq!(a.mean_path_km, b.mean_path_km, "at {}", a.event);
            assert_eq!(a.convergence_ms, b.convergence_ms, "at {}", a.event);
            assert_eq!(a.degraded_queries, b.degraded_queries, "at {}", a.event);
            assert_eq!(a.note, b.note, "at {}", a.event);
        }
        let (inc_rc, inc_ru) = ti.recompute_totals();
        let (full_rc, full_ru) = tf.recompute_totals();
        assert_eq!(full_ru, 0, "the oracle reuses nothing");
        assert!(inc_ru > 0, "the incremental path must reuse some assignments");
        assert!(inc_rc < full_rc, "incremental {inc_rc} must beat full {full_rc}");
        // The flap moved somebody, both ways.
        assert!(ti.max_shifted_frac() > 0.0);
    }

    /// `run_pipelined` must render a byte-identical timeline to `run`
    /// at every thread count: the deferred record is a pure function of
    /// committed data, so overlapping its rendering with the next epoch
    /// can change only wall-clock, never bytes.
    #[test]
    fn pipelined_timeline_is_byte_identical_to_serial() {
        let (net, dep, users) = world(4);
        let probe = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let target = hottest_site(&probe);
        let scenario = Scenario::site_flap(
            "pipeflap",
            target,
            SimTime::from_secs(60.0),
            600_000.0,
            3,
            30_000.0,
            7,
        )
        .ticks(SimTime::from_secs(45.0), 120_000.0, 20);
        let mut serial = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let reference: Vec<Vec<String>> = serial.run(&scenario).rows();
        for t in [1usize, 8] {
            par::set_threads(t);
            let mut piped = engine(&net, &dep, &users, RecomputeMode::Incremental);
            let got = piped.run_pipelined(&scenario).rows();
            par::set_threads(0);
            assert_eq!(got, reference, "threads={t}");
        }
    }

    /// Same identity with controller rounds attached — the multi-record
    /// epoch path, where `epoch_core` returns earlier records already
    /// rendered and defers only the last.
    #[test]
    fn pipelined_matches_serial_with_controller_rounds() {
        let (net, dep, users) = world(4);
        let total: f64 = users.iter().map(|u| u.weight).sum();
        let build = |ctl: bool| {
            let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental)
                .with_capacities(SiteCapacities::uniform(dep.sites.len(), total * 0.45));
            if ctl {
                e = e.with_controller(Box::new(loadmgmt::HysteresisController::new(0.8)));
            }
            e
        };
        let target = hottest_site(&build(false));
        let scenario = Scenario::site_flap(
            "pipectl",
            target,
            SimTime::from_secs(30.0),
            300_000.0,
            2,
            60_000.0,
            5,
        )
        .ticks(SimTime::from_secs(20.0), 90_000.0, 12);
        let reference = build(true).run(&scenario).rows();
        par::set_threads(8);
        let got = build(true).run_pipelined(&scenario).rows();
        par::set_threads(0);
        assert_eq!(got, reference);
    }

    /// A capacity dip moves no users (announcements are untouched) but
    /// must show up in the headroom ledger, and the reciprocal restore
    /// must land headroom back where it started.
    #[test]
    fn capacity_scale_changes_headroom_not_assignments() {
        let (net, dep, users) = world(4);
        let total: f64 = users.iter().map(|u| u.weight).sum();
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental)
            .with_capacities(SiteCapacities::uniform(dep.sites.len(), total));
        let target = hottest_site(&e);
        let before = e.user_snapshot();
        let init_headroom = e.init_record().headroom_frac.unwrap();
        let s = Scenario::capacity_dip("dip", target, SimTime::from_secs(10.0), 0.25, 60_000.0);
        let t = e.run(&s);
        assert_eq!(t.records.len(), 3);
        let dip = &t.records[1];
        assert_eq!(dip.event, format!("cap {target} x0.25"));
        assert_eq!(dip.shifted, 0.0, "capacity moves no announcements");
        assert!(
            dip.headroom_frac.unwrap() < init_headroom,
            "shrinking the hottest site's capacity must shrink worst headroom"
        );
        let back = t.records.last().unwrap();
        assert!(
            (back.headroom_frac.unwrap() - init_headroom).abs() < 1e-9,
            "reciprocal restore lands headroom back"
        );
        assert_eq!(e.user_snapshot(), before, "assignments untouched throughout");
    }

    /// Without a capacity table the event has nothing to scale: it must
    /// be a recorded no-op, not a panic or a silent drop.
    #[test]
    fn capacity_scale_without_capacities_is_recorded_noop() {
        let (net, dep, users) = world(3);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let before = e.user_snapshot();
        let s = Scenario::new("nocaps").at(
            SimTime::from_secs(5.0),
            RoutingEvent::CapacityScale { site: SiteId(0), factor: 0.5 },
        );
        let t = e.run(&s);
        let r = &t.records[1];
        assert_eq!(r.event, "cap site-0 x0.50");
        assert!(r.note.contains("ignored"), "the no-op must be recorded: {}", r.note);
        assert_eq!(e.user_snapshot(), before);
    }

    /// Swapping the policy mid-run keeps the run consistent: the second
    /// half runs under the new controller and the ledger keeps
    /// accruing. Swapping NullController in must leave decisions off.
    #[test]
    fn set_controller_swaps_policy_mid_run() {
        let (net, dep, users) = world(4);
        let total: f64 = users.iter().map(|u| u.weight).sum();
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental)
            .with_capacities(SiteCapacities::uniform(dep.sites.len(), total * 0.40))
            .with_controller(Box::new(loadmgmt::NullController));
        let target = hottest_site(&e);
        let scenario = Scenario::site_flap(
            "ctl-swap",
            target,
            SimTime::from_secs(30.0),
            120_000.0,
            1,
            0.0,
            3,
        )
        .ticks(SimTime::from_secs(200.0), 30_000.0, 4);
        let mut stepper = EpochStepper::new(&e, &scenario);
        // Run the flap under Null, then hand over to the distributed
        // policy for the tick tail.
        let mut stepped = 0;
        while stepper.next_time().is_some_and(|t| t.as_secs() < 200.0) {
            assert!(stepper.step(&mut e));
            stepped += 1;
        }
        assert!(stepped >= 2, "the flap must have applied under Null");
        let rounds_before = e.load_ledger().controller_rounds;
        assert_eq!(rounds_before, 0, "NullController never acts");
        e.set_controller(Some(Box::new(loadmgmt::HysteresisController::new(0.8))));
        while stepper.step(&mut e) {}
        let t = stepper.finish(&mut e);
        assert!(t.records.len() >= 7);
        // The handover itself must not corrupt determinism: a second
        // identical run produces identical rows.
        let mut e2 = engine(&net, &dep, &users, RecomputeMode::Incremental)
            .with_capacities(SiteCapacities::uniform(dep.sites.len(), total * 0.40))
            .with_controller(Box::new(loadmgmt::NullController));
        let mut st2 = EpochStepper::new(&e2, &scenario);
        while st2.next_time().is_some_and(|t| t.as_secs() < 200.0) {
            st2.step(&mut e2);
        }
        e2.set_controller(Some(Box::new(loadmgmt::HysteresisController::new(0.8))));
        while st2.step(&mut e2) {}
        assert_eq!(st2.finish(&mut e2).rows(), t.rows());
    }

    #[test]
    #[should_panic(expected = "with_capacities")]
    fn set_controller_without_capacities_panics() {
        let (net, dep, users) = world(3);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        e.set_controller(Some(Box::new(loadmgmt::NullController)));
    }

    #[test]
    fn flap_recovers_to_initial_state() {
        let (net, dep, users) = world(4);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let target = hottest_site(&e);
        let init_median = e.init_record().median_ms;
        let scenario =
            Scenario::site_flap("flap", target, SimTime::from_secs(10.0), 120_000.0, 1, 0.0, 3);
        let t = e.run(&scenario);
        // init, down, up.
        assert_eq!(t.records.len(), 3);
        let down = &t.records[1];
        assert!(down.shifted > 0.0, "the hottest site's users must move");
        let up = &t.records[2];
        assert_eq!(up.median_ms, init_median, "recovery restores the steady state");
        assert_eq!(up.unserved_frac, t.records[0].unserved_frac);
    }

    #[test]
    fn drain_schedules_its_own_end() {
        // stages = 1 degenerates to the old binary drain: start downs
        // the site immediately, end restores it hold_ms later.
        let (net, dep, users) = world(3);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let sites: Vec<SiteId> = (0..3).map(SiteId).collect();
        let scenario = Scenario::rolling_drain(
            "mnt",
            &sites,
            SimTime::from_secs(5.0),
            10_000.0,
            1,
            60_000.0,
            90_000.0,
        );
        let t = e.run(&scenario);
        // init + 3 starts + 3 ends.
        assert_eq!(t.records.len(), 7);
        assert_eq!(t.records.iter().filter(|r| r.event.starts_with("drain-end")).count(), 3);
        let last = t.records.last().unwrap();
        assert_eq!(last.unserved_frac, t.records[0].unserved_frac, "drains all end");
        // Staggered one-at-a-time: never more than one site down, so
        // nothing is ever unserved beyond the steady state.
        assert!(t.records.iter().all(|r| r.unserved_frac <= t.records[0].unserved_frac + 1e-12));
    }

    #[test]
    fn killing_every_site_unserves_everyone_then_recovers() {
        // Three simultaneous failures form exactly ONE batched epoch.
        let (net, dep, users) = world(3);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let mut s = Scenario::new("blackout");
        for i in 0..3 {
            s = s.at(SimTime::from_secs(1.0), RoutingEvent::SiteDown(SiteId(i)));
        }
        s = s.at(SimTime::from_secs(2.0), RoutingEvent::SiteUp(SiteId(0)));
        let t = e.run(&s);
        // init + one batched blackout epoch + recovery.
        assert_eq!(t.records.len(), 3);
        let dark = &t.records[1];
        assert_eq!(dark.unserved_frac, 1.0);
        assert_eq!(dark.median_ms, None);
        assert_eq!(dark.event, "down site-0 + down site-1 + down site-2");
        let back = t.records.last().unwrap();
        assert!(back.unserved_frac < 1.0, "one site back must serve somebody");
        assert!(back.median_ms.is_some());
    }

    #[test]
    fn prefix_withdraw_matches_site_down_for_same_host() {
        let (net, dep, users) = world(4);
        // Withdrawing a host's prefix must equal downing all its sites.
        let host = dep.sites[0].host;
        let hosted: Vec<SiteId> =
            dep.sites.iter().filter(|s| s.host == host).map(|s| s.id).collect();
        let mut by_withdraw = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let mut by_down = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let t1 = by_withdraw.run(
            &Scenario::new("w").at(SimTime::from_secs(1.0), RoutingEvent::PrefixWithdraw(host)),
        );
        let mut s = Scenario::new("d");
        for &site in &hosted {
            s = s.at(SimTime::from_secs(1.0), RoutingEvent::SiteDown(site));
        }
        let t2 = by_down.run(&s);
        let a = t1.records.last().unwrap();
        let b = t2.records.last().unwrap();
        assert_eq!(a.median_ms, b.median_ms);
        assert_eq!(a.unserved_frac, b.unserved_frac);
        assert_eq!(a.mean_path_km, b.mean_path_km);
    }

    #[test]
    fn peering_loss_is_applied_and_restored() {
        let (net, dep, users) = world(4);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let init_median = e.init_record().median_ms;
        // Losing sessions toward a heavy transit AS must not corrupt
        // state: after restore we are exactly at the steady state.
        let neighbor = net.graph.node_at(0).asn;
        let t = e.run(&Scenario::peering_flap("pf", neighbor, SimTime::from_secs(1.0), 60_000.0));
        assert_eq!(t.records.len(), 3);
        assert_eq!(t.records[2].median_ms, init_median);
    }

    #[test]
    fn same_timestamp_flap_is_a_recorded_noop() {
        let (net, dep, users) = world(3);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let target = hottest_site(&e);
        let init_median = e.init_record().median_ms;
        let before = e.user_snapshot();
        // Insertion order must not matter: the up is scheduled BEFORE
        // the down, yet the pair still nets out.
        let t_ev = SimTime::from_secs(30.0);
        let s = Scenario::new("flap0")
            .at(t_ev, RoutingEvent::SiteUp(target))
            .at(t_ev, RoutingEvent::SiteDown(target));
        let t = e.run(&s);
        assert_eq!(t.records.len(), 2, "one batched epoch, not two");
        let r = &t.records[1];
        assert_eq!(r.event, format!("flap {target}"));
        assert!(r.note.contains("cancel"), "the no-op must be recorded: {}", r.note);
        assert_eq!(r.shifted, 0.0);
        assert_eq!(r.recomputed, 0, "a cancelled pair challenges nobody");
        assert_eq!(r.median_ms, init_median);
        assert_eq!(e.user_snapshot(), before, "state is untouched");
    }

    #[test]
    fn gradual_drain_completes_in_staged_epochs_and_recovers() {
        let (net, dep, users) = world(4);
        let total: f64 = users.iter().map(|u| u.weight).sum();
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental)
            .with_capacities(SiteCapacities::uniform(dep.sites.len(), total));
        let target = hottest_site(&e);
        let before = e.user_snapshot();
        let init_median = e.init_record().median_ms;
        assert!(e.init_record().headroom_frac.is_some(), "capacities fill headroom");
        let s = Scenario::gradual_drain("gd", target, SimTime::from_secs(10.0), 30_000.0, 3, 120_000.0);
        let t = e.run(&s);
        // init, start (stage 1), stage 2, stage 3 (final down), end.
        assert_eq!(t.records.len(), 5);
        assert_eq!(t.records[1].event, format!("drain-start {target}"));
        assert_eq!(t.records[2].event, format!("drain-stage {target}"));
        assert_eq!(t.records[3].event, format!("drain-stage {target}"));
        assert_eq!(t.records[4].event, format!("drain-end {target}"));
        assert!(
            t.records.iter().all(|r| !r.note.contains("abort")),
            "generous capacity must not abort"
        );
        assert!(
            t.records[1..4].iter().map(|r| r.shifted).sum::<f64>() > 0.0,
            "draining the hottest site must move somebody"
        );
        assert!(t.records.iter().all(|r| r.headroom_frac.is_some()));
        let last = t.records.last().unwrap();
        assert_eq!(last.median_ms, init_median, "the drain ends where it began");
        assert_eq!(e.user_snapshot(), before);
    }

    #[test]
    fn overloading_drain_aborts_and_rolls_back_byte_identically() {
        let (net, dep, users) = world(4);
        let probe = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let target = hottest_site(&probe);
        let init_loads = probe.site_loads();
        // Capacities hugging the steady-state loads: any user shifted
        // onto a survivor overloads it, so the drain cannot proceed.
        let caps =
            SiteCapacities::from_per_site(init_loads.iter().map(|l| l.max(0.5) * 1.0001).collect());
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental).with_capacities(caps);
        let before = e.user_snapshot();
        let s = Scenario::gradual_drain("gd", target, SimTime::from_secs(10.0), 30_000.0, 3, 120_000.0);
        let t = e.run(&s);
        let abort = t
            .records
            .iter()
            .find(|r| r.event.contains("drain-abort"))
            .expect("tight capacities must abort the drain");
        assert!(abort.note.contains("drain aborted"), "note: {}", abort.note);
        assert_eq!(abort.shifted, 0.0, "the abort epoch nets out to no shift");
        assert_eq!(
            e.user_snapshot(),
            before,
            "an aborted drain leaves assignments byte-identical to pre-drain"
        );
        assert_eq!(
            t.records.last().unwrap().event,
            abort.event,
            "follow-ups of the aborted drain are dropped, so the abort closes the run"
        );
    }

    #[test]
    fn capacity_edge_exact_fit_completes_and_one_user_less_aborts() {
        let (net, dep, users) = world(4);
        let probe = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let target = hottest_site(&probe);
        let init_loads = probe.site_loads();
        // The per-site peak during a drain equals the load with the
        // target fully down (stages only ever add users to survivors),
        // so measure that directly.
        let mut down_probe = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let _ = down_probe
            .run(&Scenario::new("p").at(SimTime::from_secs(1.0), RoutingEvent::SiteDown(target)));
        let down_loads = down_probe.site_loads();
        let exact: Vec<f64> = init_loads
            .iter()
            .zip(&down_loads)
            .map(|(a, b)| a.max(*b).max(0.5))
            .collect();
        let scenario =
            Scenario::gradual_drain("gd", target, SimTime::from_secs(10.0), 30_000.0, 3, 120_000.0);

        // Exact fit: the strict `load > cap` check lets it through.
        let mut fits = engine(&net, &dep, &users, RecomputeMode::Incremental)
            .with_capacities(SiteCapacities::from_per_site(exact.clone()));
        let t = fits.run(&scenario);
        assert_eq!(t.records.len(), 5, "exact-fit capacity completes all 3 stages + end");
        assert!(t.records.iter().all(|r| !r.event.contains("drain-abort")));

        // One user less of room on the heaviest receiver: abort.
        let receiver = init_loads
            .iter()
            .zip(&down_loads)
            .enumerate()
            .max_by(|a, b| (a.1 .1 - a.1 .0).total_cmp(&(b.1 .1 - b.1 .0)))
            .map(|(i, _)| i)
            .unwrap();
        assert!(
            down_loads[receiver] > init_loads[receiver],
            "the hottest site's users must land somewhere"
        );
        let mut tight = exact;
        tight[receiver] = down_loads[receiver] - 0.5;
        let mut aborts = engine(&net, &dep, &users, RecomputeMode::Incremental)
            .with_capacities(SiteCapacities::from_per_site(tight));
        let t = aborts.run(&scenario);
        assert!(
            t.records.iter().any(|r| r.event.contains("drain-abort")),
            "one user over capacity must abort: {:?}",
            t.records.iter().map(|r| r.event.clone()).collect::<Vec<_>>()
        );
    }

    /// The public via-load accessors share one accumulator with the
    /// drain plans and the controller observation; the partition
    /// property itself is the doc test on
    /// [`DynamicsEngine::global_via_loads`]. Here: the by-site batch
    /// view matches the per-site accessor, lightest first.
    #[test]
    fn via_loads_by_site_matches_the_public_accessors() {
        let (net, dep, users) = world(4);
        let e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        assert!(!e.global_via_loads().is_empty(), "somebody must enter through a neighbor");
        let by_site = e.via_loads_by_site();
        assert_eq!(by_site.len(), dep.sites.len());
        for (i, sessions) in by_site.iter().enumerate() {
            let single = e.site_via_loads(SiteId(i as u32));
            assert_eq!(sessions.len(), single.len());
            for pair in sessions.windows(2) {
                assert!(
                    pair[0].1 <= pair[1].1,
                    "sessions must be lightest first at site {i}"
                );
            }
            for &(a, w) in sessions {
                assert_eq!(single.get(&a), Some(&w));
            }
        }
    }

    /// An expanded engine must agree with the unexpanded one on every
    /// population-independent metric (medians, fractions, site sets),
    /// carry ~population rows, and prove sub-linear invalidation work
    /// on single-site events.
    #[test]
    fn expanded_population_preserves_metrics_and_invalidates_sublinearly() {
        let (net, dep, users) = world(4);
        let target_pop = 10 * users.len();
        let counts = crate::columnar::expand_counts(
            &users.iter().map(|u| u.weight).collect::<Vec<_>>(),
            target_pop,
            42,
        );
        let mut small = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let mut big = DynamicsEngine::new_expanded(
            &net.graph,
            Arc::clone(&dep),
            LatencyModel::default(),
            &users,
            &counts,
            42,
            RecomputeMode::Incremental,
        );
        assert_eq!(big.population(), target_pop);
        assert_eq!(big.cohort_count(), users.len());
        // Equal per-source weights split evenly, so weighted medians
        // and served fractions must match the unexpanded engine.
        assert_eq!(big.init_record().median_ms, small.init_record().median_ms);
        assert_eq!(big.init_record().unserved_frac, small.init_record().unserved_frac);
        let target = hottest_site(&small);
        let scenario =
            Scenario::site_flap("flap", target, SimTime::from_secs(60.0), 600_000.0, 3, 30_000.0, 7);
        let ts = small.run(&scenario);
        let tb = big.run(&scenario);
        for (a, b) in ts.records.iter().zip(&tb.records) {
            assert_eq!(a.event, b.event);
            assert!((a.shifted_frac - b.shifted_frac).abs() < 1e-9, "at {}", a.event);
            assert_eq!(a.median_ms, b.median_ms, "at {}", a.event);
        }
        // Ledger identity at the expanded population...
        for r in &tb.records {
            assert_eq!(r.recomputed + r.reused, target_pop as u64, "at {}", r.event);
        }
        // ...and the slice walk never visited the whole population on
        // these single-site flaps.
        let (slice, pop) = big.invalidation_ledger();
        assert_eq!(pop, (target_pop * (tb.records.len() - 1)) as u64);
        assert!(slice < pop, "slice {slice} must undercut population {pop}");
        assert!(slice > 0, "the flapped site's own slices are visited");
    }

    #[test]
    fn columns_materialize_exactly_the_cohort_states() {
        let (net, dep, users) = world(4);
        let counts = crate::columnar::expand_counts(
            &users.iter().map(|u| u.weight).collect::<Vec<_>>(),
            10 * users.len(),
            42,
        );
        let mut e = DynamicsEngine::new_expanded(
            &net.graph,
            Arc::clone(&dep),
            LatencyModel::default(),
            &users,
            &counts,
            42,
            RecomputeMode::Incremental,
        );
        let target = hottest_site(&e);
        let scenario =
            Scenario::site_flap("flap", target, SimTime::from_secs(60.0), 600_000.0, 2, 0.0, 7);
        e.run(&scenario);
        assert!(!e.stale.is_empty(), "the flap must have marked cohorts stale");
        let states = e.states.clone();
        let cohorts = e.cohorts.clone();
        let cols = e.columns();
        for (c, st) in cohorts.iter().zip(&states) {
            for i in c.range() {
                assert_eq!(cols.site[i], st.site.map_or(NO_SITE, |s| s.0), "site row {i}");
                assert_eq!(cols.via[i], st.via.map_or(NO_ASN, |a| a.0), "via row {i}");
                match st.key {
                    Some(k) => {
                        assert_eq!(cols.key_class[i], k.class.code(), "class row {i}");
                        assert_eq!(cols.key_path_len[i], k.path_len, "path_len row {i}");
                        assert_eq!(cols.key_exit_km[i], k.exit_km, "exit_km row {i}");
                        assert_eq!(cols.key_host[i], k.host.0, "host row {i}");
                        assert_eq!(cols.key_scope[i], k.scope.code(), "scope row {i}");
                    }
                    None => assert_eq!(cols.key_class[i], NO_KEY, "class row {i}"),
                }
            }
        }
        assert!(e.stale.is_empty(), "the sync drains every mark");
    }

    #[test]
    fn site_failure_mid_drain_aborts_it_and_stale_stages_are_ignored() {
        let (net, dep, users) = world(4);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let target = hottest_site(&e);
        let init_median = e.init_record().median_ms;
        let s = Scenario::gradual_drain("gd", target, SimTime::from_secs(10.0), 30_000.0, 4, 120_000.0)
            .at(SimTime::from_secs(25.0), RoutingEvent::SiteDown(target))
            .at(SimTime::from_secs(200.0), RoutingEvent::SiteUp(target));
        let t = e.run(&s);
        // init, drain-start@10, down@25 (kills the drain), stale
        // drain-stage@40, up@200.
        assert_eq!(t.records.len(), 5);
        assert!(t.records[2].note.contains("aborted"), "note: {}", t.records[2].note);
        assert!(t.records[3].note.contains("stale"), "note: {}", t.records[3].note);
        assert_eq!(t.records[3].shifted, 0.0, "a stale stage moves nobody");
        assert_eq!(t.records.last().unwrap().median_ms, init_median);
    }

    fn crowd(e: &DynamicsEngine<'_>, factor: f64) -> Scenario {
        let hot = hottest_site(e);
        let center = e.base.sites[hot.0 as usize].location;
        Scenario::flash_crowd(
            "crowd",
            center,
            6_000.0,
            factor,
            SimTime::from_secs(60.0),
            300_000.0,
            60_000.0,
        )
    }

    /// A demand surge scales cohort weights lazily: the epoch touches
    /// only cohorts, ticks recompute nobody, and the reciprocal scale
    /// restores both the scalar totals and the materialized columns.
    #[test]
    fn demand_scale_is_lazy_and_the_reciprocal_restores_it() {
        let (net, dep, users) = world(4);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let w0 = e.total_weight;
        let cols_w0: f64 = e.columns().weight.iter().sum();
        let s = crowd(&e, 2.0);
        let t = e.run(&s);
        for r in &t.records {
            if r.event.starts_with("surge") {
                assert_eq!(r.shifted, 0.0, "a demand scale moves nobody: {}", r.event);
                assert!(r.note.contains("demand x"), "note: {}", r.note);
            }
            if r.event == "tick" {
                assert_eq!(r.recomputed, 0, "a bare tick re-ranks nobody");
                assert_eq!(r.shifted, 0.0);
            }
        }
        assert!(t.records.iter().any(|r| r.event.starts_with("surge x2.00")));
        assert!(t.records.iter().any(|r| r.event.starts_with("surge x0.50")));
        assert!((e.total_weight - w0).abs() < 1e-6 * w0, "reciprocal restores total weight");
        assert!(e.demand_mult.iter().all(|m| (m - 1.0).abs() < 1e-9 || *m != 1.0));
        let cols_w1: f64 = e.columns().weight.iter().sum();
        assert!((cols_w1 - cols_w0).abs() < 1e-6 * cols_w0, "columns fold the multipliers back");
    }

    /// The surge itself must grow demand while it holds.
    #[test]
    fn demand_scale_grows_weight_while_the_crowd_holds() {
        let (net, dep, users) = world(4);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let w0 = e.total_weight;
        let hot = hottest_site(&e);
        let center = e.base.sites[hot.0 as usize].location;
        let s = Scenario::new("half").at(
            SimTime::from_secs(10.0),
            RoutingEvent::DemandScale { center, radius_km: 6_000.0, factor: 2.0 },
        );
        e.run(&s);
        assert!(e.total_weight > w0, "somebody inside the radius scaled up");
        assert!(e.demand_mult.iter().any(|m| (*m - 2.0).abs() < 1e-12));
    }

    /// A `NullController` attached to a capacity-aware engine must
    /// leave every timeline byte exactly as a controller-less run
    /// produces it — the ledger accrues overload either way.
    #[test]
    fn null_controller_preserves_timeline_byte_identity() {
        let (net, dep, users) = world(4);
        let plain = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let caps = SiteCapacities::from_headroom(&plain.site_loads(), 1.15, 1.0);
        let mut plain = plain.with_capacities(caps.clone());
        let mut nulled = engine(&net, &dep, &users, RecomputeMode::Incremental)
            .with_capacities(caps)
            .with_controller(Box::new(loadmgmt::NullController));
        let target = hottest_site(&plain);
        let s = crowd(&plain, 2.0)
            .at(SimTime::from_secs(130.0), RoutingEvent::SiteDown(target))
            .at(SimTime::from_secs(250.0), RoutingEvent::SiteUp(target));
        let tp = plain.run(&s);
        let tn = nulled.run(&s);
        assert_eq!(tp.rows(), tn.rows(), "a null controller must not perturb a single byte");
        assert_eq!(plain.load_ledger().overload_site_ms, nulled.load_ledger().overload_site_ms);
        assert_eq!(nulled.load_ledger().shed_users, 0.0);
        assert_eq!(nulled.load_ledger().controller_rounds, 0);
    }

    /// The distributed controller must actually shed under a flash
    /// crowd and strictly reduce accrued overload versus doing nothing.
    #[test]
    fn distributed_controller_sheds_and_reduces_overload() {
        let (net, dep, users) = world(4);
        let none = engine(&net, &dep, &users, RecomputeMode::Incremental);
        // A tight cap on the hottest site and slack everywhere else:
        // the crowd overloads exactly one site while the rest of the
        // deployment has genuine room for whatever a controller sheds.
        let hot = hottest_site(&none);
        let caps = SiteCapacities::from_per_site(
            none.site_loads()
                .iter()
                .enumerate()
                .map(|(i, l)| if i == hot.0 as usize { l * 1.1 } else { l * 10.0 })
                .collect(),
        );
        let mut none = none.with_capacities(caps.clone());
        let mut dist = engine(&net, &dep, &users, RecomputeMode::Incremental)
            .with_capacities(caps)
            .with_controller(Box::new(loadmgmt::DistributedController::default()));
        let s = crowd(&none, 2.0);
        none.run(&s);
        let td = dist.run(&s);
        let ln = none.load_ledger();
        let ld = dist.load_ledger();
        assert!(ln.overload_site_ms > 0.0, "the crowd must overload the baseline");
        assert!(
            ld.overload_site_ms < ln.overload_site_ms,
            "controller {} must beat baseline {}",
            ld.overload_site_ms,
            ln.overload_site_ms
        );
        assert!(ld.shed_users > 0.0, "clearing overload requires shedding someone");
        assert!(ld.released_users <= ld.shed_users + 1e-9, "ledger identity");
        assert!(ld.controller_rounds >= 1);
        assert!(
            td.records.iter().any(|r| r.event.starts_with("ctrl[distributed]")),
            "controller rounds appear as timeline rows"
        );
        // Controller rows are same-SimTime epochs after their trigger.
        for w in td.records.windows(2) {
            if w[1].event.starts_with("ctrl[") {
                assert_eq!(w[0].t_ms, w[1].t_ms, "ctrl rounds share the trigger's timestamp");
            }
        }
    }

    /// Withholds emitted by a controller survive an unrelated routing
    /// epoch: the shed sessions stay away until released, because the
    /// withhold joins the drain footprint every recompute sees.
    #[test]
    fn controller_withholds_persist_across_routing_epochs() {
        let (net, dep, users) = world(4);
        let base = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let caps = SiteCapacities::from_headroom(&base.site_loads(), 1.15, 1.0);
        let mut e = base
            .with_capacities(caps)
            .with_controller(Box::new(loadmgmt::ThresholdController));
        let hot = hottest_site(&e);
        let center = e.base.sites[hot.0 as usize].location;
        let cold = SiteId((0..e.base.sites.len() as u32).find(|i| SiteId(*i) != hot).unwrap());
        let s = Scenario::new("persist")
            .at(
                SimTime::from_secs(10.0),
                RoutingEvent::DemandScale { center, radius_km: 6_000.0, factor: 2.0 },
            )
            .at(SimTime::from_secs(60.0), RoutingEvent::SiteDown(cold))
            .at(SimTime::from_secs(120.0), RoutingEvent::SiteUp(cold))
            .ticks(SimTime::from_secs(180.0), 60_000.0, 1);
        e.run(&s);
        let ledger = e.load_ledger().clone();
        assert!(ledger.shed_users > 0.0, "the surge must trip the threshold");
        // Withheld neighbors cannot appear in their shed site's
        // via-load map while the withhold stands.
        for (site, withheld) in e.ctrl_withheld.iter().enumerate() {
            if withheld.is_empty() {
                continue;
            }
            let vias = e.site_via_loads(SiteId(site as u32));
            for (asn, _) in withheld {
                assert!(!vias.contains_key(asn), "withheld {asn:?} still lands on site {site}");
            }
        }
    }

}
