//! The dynamics engine: apply a routing event, recompute only what the
//! event could have moved.
//!
//! [`DynamicsEngine`] drives one deployment through a [`Scenario`] on
//! `netsim`'s simulated clock. After every event it rebuilds the
//! catchment over the *effective* deployment (surviving sites, current
//! prefix announcements, current peering withholds) — which is cheap
//! thanks to [`RouteCache`] memoization — and then decides, per user,
//! whether the event could possibly have changed that user's BGP
//! choice. Only challenged users are re-ranked; the rest reuse their
//! stored assignment verbatim.
//!
//! # Why the reuse rule is sound
//!
//! Catchments are built from *origin groups* keyed `(host AS, scope)`;
//! each group's routes live behind an `Arc` memoized by the route
//! cache, so an unchanged group is recognizable by pointer identity
//! plus an identical hosted-site list. The engine diffs successive
//! group sets and recomputes a user when, and only when:
//!
//! 1. the user's *winning* group was removed or changed — its routes
//!    or its hosted sites are different, so anything about the stored
//!    assignment may be stale; or
//! 2. some added or changed group's new route at the user's source AS
//!    satisfies [`CandidateKey::challenged_by`] against the stored
//!    winning key — i.e. it beats or ties the winner on the
//!    geography-blind prefix of the BGP decision (class, path length)
//!    and could therefore take over once the early-exit tie-break
//!    runs; or
//! 3. the user was unserved and an added or changed group now has any
//!    route at their source.
//!
//! Everything else is provably unaffected: removing or weakening a
//! group the user did not choose cannot improve it, an unchanged
//! group ranks and materializes exactly as before, and a challenger
//! that loses on (class, length) loses outright because the early-exit
//! distance is only consulted on ties.

use crate::event::{EventQueue, RoutingEvent};
use crate::scenario::Scenario;
use crate::timeline::{weighted_median, EpochRecord, Timeline};
use geo::GeoPoint;
use netsim::{LastMile, LatencyModel, PathProfile, SimClock, SimTime};
use par::{DetHashMap, DetHashSet};
use std::sync::Arc;
use topology::{
    AnycastDeployment, AnycastSite, AsGraph, Asn, CandidateKey, Catchment, ExportScope,
    OriginRoutes, RouteCache, SiteId,
};

/// Floor of the stylized BGP convergence model: even a tiny change
/// takes a couple of seconds to propagate.
const BASE_CONVERGENCE_MS: f64 = 2_000.0;
/// Slope of the convergence model: shifting the entire user base costs
/// an extra ~28 s of path exploration (order of the classic BGP
/// convergence measurements).
const SHIFT_CONVERGENCE_MS: f64 = 28_000.0;
const MS_PER_DAY: f64 = 86_400_000.0;

/// How the engine reacts to an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecomputeMode {
    /// Re-rank only users whose stored choice the event could have
    /// invalidated (the production path).
    Incremental,
    /// Re-rank every user at every event — the reference oracle the
    /// incremental path must match record-for-record.
    Full,
}

/// One weighted traffic source driven through a scenario.
#[derive(Debug, Clone, Copy)]
pub struct DynUser {
    /// Source AS.
    pub asn: Asn,
    /// Source location.
    pub location: GeoPoint,
    /// Population weight (user count).
    pub weight: f64,
    /// Query volume this source sends per day (for the degraded-query
    /// accounting during convergence windows).
    pub queries_per_day: f64,
}

/// A user's current assignment, in *original* deployment site ids.
#[derive(Debug, Clone, Copy)]
struct UserState {
    site: Option<SiteId>,
    key: Option<CandidateKey>,
    /// The AS adjacent to the serving site's host on the current path —
    /// the neighbor that heard the host's announcement, i.e. the
    /// session a `PeeringDown` against that neighbor would sever.
    via: Option<Asn>,
    latency_ms: f64,
    path_km: f64,
}

const UNSERVED: UserState =
    UserState { site: None, key: None, via: None, latency_ms: 0.0, path_km: 0.0 };

/// Snapshot of one origin group of the current catchment: the shared
/// route table and the hosted sites in original ids, sorted.
#[derive(Debug)]
struct GroupSnap {
    routes: Arc<OriginRoutes>,
    sites: Vec<SiteId>,
}

/// Inserts `a` into the sorted set `v` (no-op if present).
fn insert_sorted(v: &mut Vec<Asn>, a: Asn) {
    if let Err(pos) = v.binary_search(&a) {
        v.insert(pos, a);
    }
}

/// Removes `a` from the sorted set `v` (no-op if absent).
fn remove_sorted(v: &mut Vec<Asn>, a: Asn) {
    if let Ok(pos) = v.binary_search(&a) {
        v.remove(pos);
    }
}

/// Drives one deployment through scripted routing events, maintaining
/// every user's assignment incrementally.
///
/// An engine is single-shot: construct, optionally inspect the initial
/// steady state ([`DynamicsEngine::init_record`],
/// [`DynamicsEngine::site_loads`]), then [`DynamicsEngine::run`] one
/// scenario.
#[derive(Debug)]
pub struct DynamicsEngine<'g> {
    graph: &'g AsGraph,
    base: Arc<AnycastDeployment>,
    model: LatencyModel,
    mode: RecomputeMode,
    users: Vec<DynUser>,
    /// Graph node index of each user's source AS (parallel to `users`).
    src_idx: Vec<usize>,
    total_weight: f64,
    cache: RouteCache,
    clock: SimClock,
    /// Announcement state per original site id (`false` = down/drained).
    alive: Vec<bool>,
    /// Host ASes that currently withdraw the prefix entirely. Sorted.
    withdrawn_hosts: Vec<Asn>,
    /// Neighbor ASes the deployment currently has no sessions toward
    /// (merged into the effective withhold list). Sorted.
    lost_peerings: Vec<Asn>,
    /// Origin-group snapshot of the current catchment.
    groups: DetHashMap<(Asn, ExportScope), GroupSnap>,
    states: Vec<UserState>,
    baseline_median_ms: Option<f64>,
    init_record: Option<EpochRecord>,
}

impl<'g> DynamicsEngine<'g> {
    /// Builds an engine and computes the initial steady-state
    /// assignment of every user (the `"init"` epoch).
    pub fn new(
        graph: &'g AsGraph,
        deployment: Arc<AnycastDeployment>,
        model: LatencyModel,
        users: Vec<DynUser>,
        mode: RecomputeMode,
    ) -> Self {
        let n_sites = deployment.sites.len();
        let total_weight = users.iter().map(|u| u.weight).sum();
        let src_idx = users.iter().map(|u| graph.idx(u.asn)).collect();
        let n = users.len();
        let mut eng = Self {
            graph,
            base: deployment,
            model,
            mode,
            users,
            src_idx,
            total_weight,
            cache: RouteCache::new(),
            clock: SimClock::new(),
            alive: vec![true; n_sites],
            withdrawn_hosts: Vec::new(),
            lost_peerings: Vec::new(),
            groups: DetHashMap::default(),
            states: vec![UNSERVED; n],
            baseline_median_ms: None,
            init_record: None,
        };
        let mut rec = eng.reassign("init", true);
        eng.baseline_median_ms = rec.median_ms;
        rec.inflation_ms = rec.median_ms.map(|_| 0.0);
        eng.init_record = Some(rec);
        eng
    }

    /// The `"init"` steady-state epoch computed at construction.
    pub fn init_record(&self) -> &EpochRecord {
        self.init_record.as_ref().expect("set in new()")
    }

    /// Weighted median RTT of the initial steady state, ms.
    pub fn baseline_median_ms(&self) -> Option<f64> {
        self.baseline_median_ms
    }

    /// The base deployment the engine was built over.
    pub fn deployment(&self) -> &AnycastDeployment {
        &self.base
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Current user weight landing on each site, indexed by original
    /// site id. Scenario builders use this to aim events at the
    /// hottest (or coldest) site deterministically.
    pub fn site_loads(&self) -> Vec<f64> {
        let mut loads = vec![0.0; self.base.sites.len()];
        for (u, st) in self.users.iter().zip(&self.states) {
            if let Some(s) = st.site {
                loads[s.0 as usize] += u.weight;
            }
        }
        loads
    }

    /// Current user weight entering the deployment through each
    /// host-adjacent neighbor AS (the last interdomain session before
    /// the serving site), heaviest first, ties broken by ASN. Users
    /// inside a host AS cross no such session and are not counted.
    /// Scenario builders use this to aim peering events at sessions
    /// that actually carry traffic — withholding is per host neighbor,
    /// so only host-adjacent ASes are meaningful targets.
    pub fn transit_loads(&self) -> Vec<(Asn, f64)> {
        let mut loads: DetHashMap<Asn, f64> = DetHashMap::default();
        for (u, st) in self.users.iter().zip(&self.states) {
            if let Some(via) = st.via {
                *loads.entry(via).or_default() += u.weight;
            }
        }
        let mut out: Vec<(Asn, f64)> = loads.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Runs `scenario` to completion and returns the per-event time
    /// series, led by the `"init"` epoch.
    pub fn run(&mut self, scenario: &Scenario) -> Timeline {
        let span = obs::span!("dynamics.scenario", name = scenario.name.as_str());
        let mut timeline = Timeline::new(scenario.name.clone());
        timeline.records.push(self.init_record().clone());
        let mut queue = EventQueue::from_events(scenario.events.iter().copied());
        let mut processed = 0u64;
        while let Some(ev) = queue.pop() {
            self.clock.advance_to(ev.at);
            self.apply(ev.event, &mut queue);
            obs::counter_add("dynamics.events_processed", 1);
            processed += 1;
            timeline.records.push(self.reassign(&ev.event.label(), false));
        }
        span.add_items(processed);
        timeline
    }

    /// Mutates announcement state for one event. Drain starts schedule
    /// their own end into the queue.
    fn apply(&mut self, event: RoutingEvent, queue: &mut EventQueue) {
        let site_slot = |s: SiteId| {
            assert!(
                (s.0 as usize) < self.base.sites.len(),
                "event targets {s} outside the deployment"
            );
            s.0 as usize
        };
        match event {
            RoutingEvent::SiteDown(s) => self.alive[site_slot(s)] = false,
            RoutingEvent::SiteUp(s) => self.alive[site_slot(s)] = true,
            RoutingEvent::DrainStart { site, duration_ms } => {
                self.alive[site_slot(site)] = false;
                queue.push(self.clock.now().plus_ms(duration_ms), RoutingEvent::DrainEnd(site));
            }
            RoutingEvent::DrainEnd(s) => self.alive[site_slot(s)] = true,
            RoutingEvent::PrefixWithdraw(a) => insert_sorted(&mut self.withdrawn_hosts, a),
            RoutingEvent::PrefixRestore(a) => remove_sorted(&mut self.withdrawn_hosts, a),
            RoutingEvent::PeeringDown(a) => insert_sorted(&mut self.lost_peerings, a),
            RoutingEvent::PeeringUp(a) => remove_sorted(&mut self.lost_peerings, a),
        }
    }

    /// The deployment as currently announced: alive sites of
    /// non-withdrawn hosts, re-id'd densely, with lost peerings merged
    /// into the withhold list. `None` when nothing is announced. The
    /// second element maps dense ids back to original ids.
    fn effective_deployment(&self) -> Option<(Arc<AnycastDeployment>, Vec<SiteId>)> {
        let mut sites: Vec<AnycastSite> = Vec::new();
        let mut orig: Vec<SiteId> = Vec::new();
        for (i, s) in self.base.sites.iter().enumerate() {
            if self.alive[i] && self.withdrawn_hosts.binary_search(&s.host).is_err() {
                orig.push(s.id);
                let mut s = s.clone();
                s.id = SiteId(sites.len() as u32);
                sites.push(s);
            }
        }
        if sites.is_empty() {
            return None;
        }
        let mut withhold = self.base.withhold.clone();
        withhold.extend(self.lost_peerings.iter().copied());
        withhold.sort_unstable();
        withhold.dedup();
        let mut dep = AnycastDeployment::new(self.base.name.clone(), sites, withhold);
        dep.origin_as = self.base.origin_as;
        dep.direct_hosts = self.base.direct_hosts.clone();
        Some((Arc::new(dep), orig))
    }

    /// Recomputes the catchment over the effective deployment, re-ranks
    /// the affected users (all of them under [`RecomputeMode::Full`] or
    /// at init), and closes the epoch.
    fn reassign(&mut self, label: &str, is_init: bool) -> EpochRecord {
        let n = self.users.len();
        // New catchment over whatever is still announced.
        let (catchment, dense_to_orig) = match self.effective_deployment() {
            Some((dep, orig)) => {
                (Some(Catchment::compute_shared(self.graph, dep, &mut self.cache)), orig)
            }
            None => (None, Vec::new()),
        };
        // Snapshot its origin groups in original site ids.
        let mut new_groups: DetHashMap<(Asn, ExportScope), GroupSnap> = DetHashMap::default();
        if let Some(c) = &catchment {
            for (host, scope) in c.group_keys() {
                let routes = c.group_routes(host, scope).expect("listed group");
                let mut sites: Vec<SiteId> = c
                    .group_sites(host, scope)
                    .expect("listed group")
                    .iter()
                    .map(|s| dense_to_orig[s.0 as usize])
                    .collect();
                sites.sort_unstable();
                new_groups.insert((host, scope), GroupSnap { routes, sites });
            }
        }

        // Who must be re-ranked?
        let affected: Vec<usize> = if is_init || self.mode == RecomputeMode::Full {
            (0..n).collect()
        } else {
            // Diff the group sets. A group whose routes Arc and hosted
            // sites both survived unchanged ranks and materializes
            // exactly as before; everything else invalidates its own
            // users and may challenge others.
            let mut invalidated: DetHashSet<(Asn, ExportScope)> = DetHashSet::default();
            let mut challengers: Vec<Arc<OriginRoutes>> = Vec::new();
            for (k, old) in &self.groups {
                match new_groups.get(k) {
                    None => {
                        invalidated.insert(*k);
                    }
                    Some(new) => {
                        if !Arc::ptr_eq(&old.routes, &new.routes) || old.sites != new.sites {
                            invalidated.insert(*k);
                            challengers.push(Arc::clone(&new.routes));
                        }
                    }
                }
            }
            for (k, new) in &new_groups {
                if !self.groups.contains_key(k) {
                    challengers.push(Arc::clone(&new.routes));
                }
            }
            (0..n)
                .filter(|&i| {
                    let src = self.src_idx[i];
                    match self.states[i].key {
                        Some(key) => {
                            invalidated.contains(&(key.host, key.scope))
                                || challengers.iter().any(|r| {
                                    r.route_at(src).is_some_and(|nr| {
                                        key.challenged_by(nr.class, nr.path_len)
                                    })
                                })
                        }
                        None => challengers.iter().any(|r| r.route_at(src).is_some()),
                    }
                })
                .collect()
        };

        // Re-rank the affected users on the deterministic parallel
        // layer; index order of `affected` fixes the merge order.
        let users = &self.users;
        let model = &self.model;
        let results: Vec<Option<UserState>> = match &catchment {
            Some(c) => par::ordered_map(&affected, |_, &i| {
                let u = &users[i];
                c.assign_with_key(u.asn, &u.location).map(|(a, key)| {
                    let ms = model
                        .median_rtt_ms(&PathProfile::from_assignment(&a, LastMile::Broadband));
                    // The withhold-relevant session: the AS the host
                    // announced to on this path (the hop right before
                    // the host; None when the user sits inside it).
                    let host = c.deployment().site(a.site).host;
                    let via = a
                        .as_path
                        .iter()
                        .position(|&n| n == host)
                        .and_then(|p| p.checked_sub(1))
                        .map(|p| a.as_path[p]);
                    UserState {
                        site: Some(dense_to_orig[a.site.0 as usize]),
                        key: Some(key),
                        via,
                        latency_ms: ms,
                        path_km: a.path_km,
                    }
                })
            }),
            None => vec![None; affected.len()],
        };

        // Apply the updates and measure the shift.
        let mut shifted = 0.0;
        let mut shifted_qpd = 0.0;
        for (&i, &res) in affected.iter().zip(&results) {
            let old_site = self.states[i].site;
            let new = res.unwrap_or(UNSERVED);
            if !is_init && new.site != old_site {
                shifted += self.users[i].weight;
                shifted_qpd += self.users[i].queries_per_day;
            }
            self.states[i] = new;
        }
        self.groups = new_groups;

        // Epoch aggregates over the full user base, in index order.
        let mut latency_pts = Vec::new();
        let mut served_w = 0.0;
        let mut path_sum = 0.0;
        for (u, st) in self.users.iter().zip(&self.states) {
            if st.site.is_some() {
                served_w += u.weight;
                path_sum += st.path_km * u.weight;
                latency_pts.push((st.latency_ms, u.weight));
            }
        }
        let median_ms = weighted_median(&mut latency_pts);
        let frac = |w: f64| if self.total_weight > 0.0 { w / self.total_weight } else { 0.0 };
        let shifted_frac = frac(shifted);
        let unserved_frac = (1.0 - frac(served_w)).max(0.0);
        let convergence_ms = if shifted > 0.0 {
            BASE_CONVERGENCE_MS + SHIFT_CONVERGENCE_MS * shifted_frac
        } else {
            0.0
        };
        let (recomputed, reused) = (affected.len() as u64, (n - affected.len()) as u64);
        obs::counter_add("dynamics.assign_recomputed", recomputed);
        obs::counter_add("dynamics.assign_reused", reused);
        // What a full recompute would have paid for this event — the
        // denominator of the incremental savings.
        obs::counter_add("dynamics.full_equiv", n as u64);
        EpochRecord {
            t_ms: self.clock.now().as_ms(),
            event: label.to_string(),
            shifted,
            shifted_frac,
            unserved_frac,
            median_ms,
            inflation_ms: match (median_ms, self.baseline_median_ms) {
                (Some(m), Some(b)) => Some(m - b),
                _ => None,
            },
            mean_path_km: if served_w > 0.0 { Some(path_sum / served_w) } else { None },
            convergence_ms,
            degraded_queries: shifted_qpd * convergence_ms / MS_PER_DAY,
            recomputed,
            reused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{InternetGenerator, SiteScope, TopologyConfig};

    fn world(n_sites: usize) -> (topology::gen::Internet, Arc<AnycastDeployment>, Vec<DynUser>) {
        let mut net = InternetGenerator::generate(&TopologyConfig::small(111));
        let hosts = net.sample_hosters(n_sites);
        let sites: Vec<AnycastSite> = hosts
            .iter()
            .enumerate()
            .map(|(i, h)| AnycastSite {
                id: SiteId(i as u32),
                name: format!("s{i}"),
                host: *h,
                location: net.graph.node(*h).pops[0],
                scope: SiteScope::Global,
            })
            .collect();
        let dep = AnycastDeployment::new("dyn-test", sites, vec![]);
        let users: Vec<DynUser> = net
            .user_locations()
            .iter()
            .map(|l| DynUser {
                asn: l.asn,
                location: net.world.region(l.region).center,
                weight: 1.0,
                queries_per_day: 1_000.0,
            })
            .collect();
        (net, Arc::new(dep), users)
    }

    fn engine<'g>(
        net: &'g topology::gen::Internet,
        dep: &Arc<AnycastDeployment>,
        users: &[DynUser],
        mode: RecomputeMode,
    ) -> DynamicsEngine<'g> {
        DynamicsEngine::new(
            &net.graph,
            Arc::clone(dep),
            LatencyModel::default(),
            users.to_vec(),
            mode,
        )
    }

    fn hottest_site(e: &DynamicsEngine<'_>) -> SiteId {
        let loads = e.site_loads();
        let i = loads
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        SiteId(i as u32)
    }

    /// The incremental path must match the full-recompute oracle on
    /// every metric of every epoch, while provably reusing work.
    #[test]
    fn incremental_matches_full_recompute() {
        let (net, dep, users) = world(4);
        let mut inc = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let mut full = engine(&net, &dep, &users, RecomputeMode::Full);
        let target = hottest_site(&inc);
        let scenario =
            Scenario::site_flap("flap", target, SimTime::from_secs(60.0), 600_000.0, 3, 30_000.0, 7);
        let ti = inc.run(&scenario);
        let tf = full.run(&scenario);
        assert_eq!(ti.records.len(), tf.records.len());
        for (a, b) in ti.records.iter().zip(&tf.records) {
            assert_eq!(a.t_ms, b.t_ms);
            assert_eq!(a.event, b.event);
            assert_eq!(a.shifted, b.shifted, "at {}", a.event);
            assert_eq!(a.unserved_frac, b.unserved_frac, "at {}", a.event);
            assert_eq!(a.median_ms, b.median_ms, "at {}", a.event);
            assert_eq!(a.mean_path_km, b.mean_path_km, "at {}", a.event);
            assert_eq!(a.convergence_ms, b.convergence_ms, "at {}", a.event);
            assert_eq!(a.degraded_queries, b.degraded_queries, "at {}", a.event);
        }
        let (inc_rc, inc_ru) = ti.recompute_totals();
        let (full_rc, full_ru) = tf.recompute_totals();
        assert_eq!(full_ru, 0, "the oracle reuses nothing");
        assert!(inc_ru > 0, "the incremental path must reuse some assignments");
        assert!(inc_rc < full_rc, "incremental {inc_rc} must beat full {full_rc}");
        // The flap moved somebody, both ways.
        assert!(ti.max_shifted_frac() > 0.0);
    }

    #[test]
    fn flap_recovers_to_initial_state() {
        let (net, dep, users) = world(4);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let target = hottest_site(&e);
        let init_median = e.init_record().median_ms;
        let scenario =
            Scenario::site_flap("flap", target, SimTime::from_secs(10.0), 120_000.0, 1, 0.0, 3);
        let t = e.run(&scenario);
        // init, down, up.
        assert_eq!(t.records.len(), 3);
        let down = &t.records[1];
        assert!(down.shifted > 0.0, "the hottest site's users must move");
        let up = &t.records[2];
        assert_eq!(up.median_ms, init_median, "recovery restores the steady state");
        assert_eq!(up.unserved_frac, t.records[0].unserved_frac);
    }

    #[test]
    fn drain_schedules_its_own_end() {
        let (net, dep, users) = world(3);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let sites: Vec<SiteId> = (0..3).map(SiteId).collect();
        let scenario =
            Scenario::rolling_drain("mnt", &sites, SimTime::from_secs(5.0), 60_000.0, 90_000.0);
        let t = e.run(&scenario);
        // init + 3 starts + 3 ends.
        assert_eq!(t.records.len(), 7);
        assert_eq!(t.records.iter().filter(|r| r.event.starts_with("drain-end")).count(), 3);
        let last = t.records.last().unwrap();
        assert_eq!(last.unserved_frac, t.records[0].unserved_frac, "drains all end");
        // Staggered one-at-a-time: never more than one site down, so
        // nothing is ever unserved beyond the steady state.
        assert!(t.records.iter().all(|r| r.unserved_frac <= t.records[0].unserved_frac + 1e-12));
    }

    #[test]
    fn killing_every_site_unserves_everyone_then_recovers() {
        let (net, dep, users) = world(3);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let mut s = Scenario::new("blackout");
        for i in 0..3 {
            s = s.at(SimTime::from_secs(1.0), RoutingEvent::SiteDown(SiteId(i)));
        }
        s = s.at(SimTime::from_secs(2.0), RoutingEvent::SiteUp(SiteId(0)));
        let t = e.run(&s);
        let dark = &t.records[3];
        assert_eq!(dark.unserved_frac, 1.0);
        assert_eq!(dark.median_ms, None);
        assert_eq!(dark.event, "down site-2");
        let back = t.records.last().unwrap();
        assert!(back.unserved_frac < 1.0, "one site back must serve somebody");
        assert!(back.median_ms.is_some());
    }

    #[test]
    fn prefix_withdraw_matches_site_down_for_same_host() {
        let (net, dep, users) = world(4);
        // Withdrawing a host's prefix must equal downing all its sites.
        let host = dep.sites[0].host;
        let hosted: Vec<SiteId> =
            dep.sites.iter().filter(|s| s.host == host).map(|s| s.id).collect();
        let mut by_withdraw = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let mut by_down = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let t1 = by_withdraw.run(
            &Scenario::new("w").at(SimTime::from_secs(1.0), RoutingEvent::PrefixWithdraw(host)),
        );
        let mut s = Scenario::new("d");
        for &site in &hosted {
            s = s.at(SimTime::from_secs(1.0), RoutingEvent::SiteDown(site));
        }
        let t2 = by_down.run(&s);
        let a = t1.records.last().unwrap();
        let b = t2.records.last().unwrap();
        assert_eq!(a.median_ms, b.median_ms);
        assert_eq!(a.unserved_frac, b.unserved_frac);
        assert_eq!(a.mean_path_km, b.mean_path_km);
    }

    #[test]
    fn peering_loss_is_applied_and_restored() {
        let (net, dep, users) = world(4);
        let mut e = engine(&net, &dep, &users, RecomputeMode::Incremental);
        let init_median = e.init_record().median_ms;
        // Losing sessions toward a heavy transit AS must not corrupt
        // state: after restore we are exactly at the steady state.
        let neighbor = net.graph.node_at(0).asn;
        let t = e.run(&Scenario::peering_flap("pf", neighbor, SimTime::from_secs(1.0), 60_000.0));
        assert_eq!(t.records.len(), 3);
        assert_eq!(t.records[2].median_ms, init_median);
    }
}
