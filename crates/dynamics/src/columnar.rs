//! Columnar (struct-of-arrays) per-user state for million-user
//! populations.
//!
//! The engine's per-user assignment state used to be an array of
//! structs: one `UserState` per user, each carrying three `Option`s and
//! a `GeoPoint`. At the paper's ~2k weighted sources that is fine; at
//! the 1M+ clients real anycast systems see it is pointer-heavy, cache-
//! hostile, and — worse — forces every epoch to *scan* the population
//! to find affected users. This module replaces it with three pieces:
//!
//! * [`UserColumns`] — parallel flat primitive arrays (site, candidate
//!   key, via-neighbor, weight, queries/day), with sentinel values
//!   ([`NO_SITE`], [`NO_ASN`], [`NO_KEY`]) instead of `Option`s, so a
//!   column is one contiguous allocation of one primitive type;
//! * [`Cohort`] — the expansion unit. [`expand_counts`] fans the ~2k
//!   weighted locations out to per-user rows; all users expanded from
//!   one location share `(source AS, location)` and therefore — because
//!   BGP's decision process sees only `(source AS, location)` — share
//!   one assignment forever. Each cohort owns a *contiguous* user-id
//!   range, so per-cohort decisions become slice writes;
//! * [`GroupIndex`] — the inverted index `(host, scope) → cohort ids`,
//!   maintained incrementally as cohorts change winning origin group,
//!   so an epoch's invalidation set is a handful of slice iterations
//!   instead of a full-population scan.
//!
//! Everything here is deterministic: [`expand_counts`] seeds its
//! apportionment tie-breaks via [`par::seed_for`], and the index is a
//! [`DetHashMap`] of sorted vectors, so iteration order is a pure
//! function of the update sequence — byte-identical at any `--threads`
//! value.

use geo::GeoPoint;
use par::DetHashMap;
use topology::{Asn, ExportScope};

/// Sentinel in the `site` column: the user is currently unserved.
pub const NO_SITE: u32 = u32::MAX;
/// Sentinel in the `via` column: no host-adjacent entry session (the
/// user sits inside the host AS, or is unserved).
pub const NO_ASN: u32 = u32::MAX;
/// Sentinel in the `key_class` column: no stored candidate key.
pub const NO_KEY: u8 = u8::MAX;

/// Struct-of-arrays per-user state. All vectors share one length (the
/// population); row `i` is user `i`. Assignment-derived columns hold
/// sentinels for unserved users. Values that are *derived* from the
/// assignment and therefore uniform across a cohort (entry point,
/// latency, path length) live in the engine's per-cohort state table
/// instead: storing them here would fan identical `f64`s across four
/// more columns on every shift.
#[derive(Debug, Clone, Default)]
pub struct UserColumns {
    /// Population weight per user.
    pub weight: Vec<f64>,
    /// Query volume per user per day.
    pub queries_per_day: Vec<f64>,
    /// Serving site (original deployment id), or [`NO_SITE`].
    pub site: Vec<u32>,
    /// Host-adjacent entry-session AS, or [`NO_ASN`].
    pub via: Vec<u32>,
    /// Stored candidate-key route class code
    /// (`RouteClass::code`), or [`NO_KEY`] when no key is stored.
    pub key_class: Vec<u8>,
    /// Stored candidate-key AS-path length.
    pub key_path_len: Vec<u32>,
    /// Stored candidate-key early-exit distance, km.
    pub key_exit_km: Vec<f64>,
    /// Stored candidate-key host AS number.
    pub key_host: Vec<u32>,
    /// Stored candidate-key export scope code (`ExportScope::code`).
    pub key_scope: Vec<u8>,
}

impl UserColumns {
    /// Builds columns for a population with the given per-user weights
    /// and query volumes; every assignment column starts at its
    /// sentinel (nobody is served yet).
    pub fn with_users(weight: Vec<f64>, queries_per_day: Vec<f64>) -> Self {
        assert_eq!(weight.len(), queries_per_day.len());
        let n = weight.len();
        Self {
            weight,
            queries_per_day,
            site: vec![NO_SITE; n],
            via: vec![NO_ASN; n],
            key_class: vec![NO_KEY; n],
            key_path_len: vec![0; n],
            key_exit_km: vec![0.0; n],
            key_host: vec![0; n],
            key_scope: vec![0; n],
        }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.weight.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.weight.is_empty()
    }
}

/// One expansion cohort: the contiguous user-id range `start..end`
/// expanded from one weighted location. Assignment state is uniform
/// across the range (one `(source AS, location)` pair, one BGP
/// outcome), so the engine stores and re-ranks per cohort and fans the
/// result across the slice.
#[derive(Debug, Clone, Copy)]
pub struct Cohort {
    /// Source AS shared by every member.
    pub asn: Asn,
    /// Dense graph node index of `asn` (precomputed).
    pub src_idx: u32,
    /// Source location shared by every member.
    pub location: GeoPoint,
    /// First member's user id.
    pub start: u32,
    /// One past the last member's user id.
    pub end: u32,
    /// Sum of member weights (accumulated in member order, so the
    /// value is deterministic).
    pub weight: f64,
    /// Sum of member query volumes per day (member order).
    pub queries_per_day: f64,
}

impl Cohort {
    /// Number of users in the cohort.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the cohort is empty (never true for expanded cohorts).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The member range as `usize` bounds, for column slicing.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }
}

/// Deterministically apportions `target` users across weighted
/// locations: every location gets at least one user, the rest follow
/// the weights by largest-remainder apportionment, with ties broken by
/// [`par::seed_for`]`(seed, index)` so the result is a pure function of
/// `(weights, target, seed)` — byte-identical at any thread count.
///
/// When `target < weights.len()` the floor of one user per location
/// wins and the expanded population is `weights.len()`.
///
/// # Panics
///
/// Panics on an empty `weights` slice.
pub fn expand_counts(weights: &[f64], target: usize, seed: u64) -> Vec<u32> {
    assert!(!weights.is_empty(), "cannot expand an empty location list");
    let n = weights.len();
    let target = target.max(n);
    let extra = (target - n) as f64;
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    // Floor share of the users beyond the one-per-location minimum.
    let ideal: Vec<f64> = if total > 0.0 {
        weights.iter().map(|w| w.max(0.0) / total * extra).collect()
    } else {
        vec![extra / n as f64; n]
    };
    let mut counts: Vec<u32> = ideal.iter().map(|q| 1 + q.floor() as u32).collect();
    let assigned: u64 = counts.iter().map(|&c| c as u64).sum();
    let leftover = target as u64 - assigned;
    // Largest remainders win the leftover units; exact ties fall to the
    // seeded per-index stream, then the index.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (ideal[a] - ideal[a].floor(), ideal[b] - ideal[b].floor());
        rb.total_cmp(&ra)
            .then_with(|| par::seed_for(seed, a as u64).cmp(&par::seed_for(seed, b as u64)))
            .then(a.cmp(&b))
    });
    for &i in order.iter().take(leftover as usize) {
        counts[i] += 1;
    }
    debug_assert_eq!(counts.iter().map(|&c| c as u64).sum::<u64>(), target as u64);
    counts
}

/// The inverted index of the columnar core: which cohorts currently
/// store each `(host, scope)` origin group as their winning key, plus
/// the cohorts with no stored key at all. Maintained incrementally as
/// assignments change, so an epoch's invalidation visits only the
/// member lists of groups the epoch could have touched.
#[derive(Debug, Clone, Default)]
pub struct GroupIndex {
    /// Sorted cohort ids per stored winning group. Entries whose member
    /// list empties are removed outright.
    pub groups: DetHashMap<(Asn, ExportScope), Vec<u32>>,
    /// Sorted cohort ids with no stored candidate key (unserved since
    /// the last full wipe).
    pub unkeyed: Vec<u32>,
}

impl GroupIndex {
    /// An index where every cohort of a population of `n_cohorts` is
    /// unkeyed — the state before the first assignment.
    pub fn all_unkeyed(n_cohorts: usize) -> Self {
        Self { groups: DetHashMap::default(), unkeyed: (0..n_cohorts as u32).collect() }
    }

    /// Moves cohort `c` from group `from` to group `to` (`None` = the
    /// unkeyed bucket on either side). No-op when `from == to`.
    pub fn move_cohort(
        &mut self,
        c: u32,
        from: Option<(Asn, ExportScope)>,
        to: Option<(Asn, ExportScope)>,
    ) {
        if from == to {
            return;
        }
        match from {
            None => {
                if let Ok(pos) = self.unkeyed.binary_search(&c) {
                    self.unkeyed.remove(pos);
                }
            }
            Some(g) => {
                if let Some(members) = self.groups.get_mut(&g) {
                    if let Ok(pos) = members.binary_search(&c) {
                        members.remove(pos);
                    }
                    if members.is_empty() {
                        self.groups.remove(&g);
                    }
                }
            }
        }
        match to {
            None => {
                if let Err(pos) = self.unkeyed.binary_search(&c) {
                    self.unkeyed.insert(pos, c);
                }
            }
            Some(g) => {
                let members = self.groups.entry(g).or_default();
                if let Err(pos) = members.binary_search(&c) {
                    members.insert(pos, c);
                }
            }
        }
    }

    /// Total cohorts tracked (keyed + unkeyed) — an invariant check.
    pub fn cohort_count(&self) -> usize {
        self.unkeyed.len() + self.groups.values().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_counts_hits_target_exactly_with_min_one_each() {
        let weights = [5.0, 1.0, 0.0, 3.5, 0.25];
        for target in [0usize, 3, 5, 17, 1_000, 99_999] {
            let counts = expand_counts(&weights, target, 2021);
            assert_eq!(counts.len(), weights.len());
            assert!(counts.iter().all(|&c| c >= 1), "floor of one user per location");
            let total: u64 = counts.iter().map(|&c| c as u64).sum();
            assert_eq!(total, target.max(weights.len()) as u64);
        }
    }

    #[test]
    fn expand_counts_is_deterministic_and_seed_sensitive() {
        // Equal weights force remainder ties, the case the seed breaks.
        let weights = vec![1.0; 7];
        let a = expand_counts(&weights, 24, 2021);
        let b = expand_counts(&weights, 24, 2021);
        assert_eq!(a, b);
        let differs = (0..64).any(|s| expand_counts(&weights, 24, s) != a);
        assert!(differs, "the seed must matter for tie-heavy apportionments");
    }

    #[test]
    fn expand_counts_tracks_weights_proportionally() {
        let weights = [900.0, 90.0, 9.0, 1.0];
        let counts = expand_counts(&weights, 100_000, 7);
        assert!(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]);
        // Within one unit of the exact quota (largest remainder bound),
        // modulo the one-per-location floor.
        let total: f64 = weights.iter().sum();
        let extra = (100_000 - weights.len()) as f64;
        for (w, &c) in weights.iter().zip(&counts) {
            let quota = 1.0 + w / total * extra;
            assert!((c as f64 - quota).abs() <= 1.0, "count {c} too far from quota {quota}");
        }
    }

    #[test]
    fn group_index_moves_preserve_membership_and_drop_empties() {
        let g1 = (Asn(10), ExportScope::Global);
        let g2 = (Asn(20), ExportScope::Local);
        let mut idx = GroupIndex::all_unkeyed(4);
        assert_eq!(idx.unkeyed, vec![0, 1, 2, 3]);
        idx.move_cohort(2, None, Some(g1));
        idx.move_cohort(0, None, Some(g1));
        idx.move_cohort(3, None, Some(g2));
        assert_eq!(idx.unkeyed, vec![1]);
        assert_eq!(idx.groups[&g1], vec![0, 2], "member lists stay sorted");
        assert_eq!(idx.cohort_count(), 4);
        // Group-to-group move; the emptied entry disappears.
        idx.move_cohort(3, Some(g2), Some(g1));
        assert!(!idx.groups.contains_key(&g2));
        assert_eq!(idx.groups[&g1], vec![0, 2, 3]);
        // Back to unkeyed; same-group moves are no-ops.
        idx.move_cohort(2, Some(g1), None);
        idx.move_cohort(0, Some(g1), Some(g1));
        assert_eq!(idx.unkeyed, vec![1, 2]);
        assert_eq!(idx.groups[&g1], vec![0, 3]);
        assert_eq!(idx.cohort_count(), 4);
    }

    #[test]
    fn user_columns_start_fully_unserved() {
        let cols = UserColumns::with_users(vec![1.0, 2.0], vec![10.0, 20.0]);
        assert_eq!(cols.len(), 2);
        assert!(!cols.is_empty());
        assert!(cols.site.iter().all(|&s| s == NO_SITE));
        assert!(cols.via.iter().all(|&v| v == NO_ASN));
        assert!(cols.key_class.iter().all(|&k| k == NO_KEY));
    }
}
