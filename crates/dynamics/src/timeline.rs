//! Per-epoch time series emitted by the engine.
//!
//! Every processed event closes one epoch and appends an
//! [`EpochRecord`]: who shifted, what latency looks like now, how long
//! routing took to converge, and — the engine's own report card — how
//! many per-user assignments it recomputed versus reused. The
//! [`Timeline`] renders to deterministic CSV-ready rows so the
//! experiment registry can ship it as a table artifact byte-identical
//! at any `--threads` value.

use serde::{Deserialize, Serialize};

/// The state of the system after one event was applied.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Simulated time of the event, ms since scenario start.
    pub t_ms: f64,
    /// Event label (`"init"` for the pre-scenario steady state).
    pub event: String,
    /// User weight whose site assignment changed at this event
    /// (including users losing or regaining service).
    pub shifted: f64,
    /// `shifted` as a fraction of all user weight.
    pub shifted_frac: f64,
    /// Fraction of user weight with no reachable site.
    pub unserved_frac: f64,
    /// Weighted median RTT of served users, ms (`None` when nobody is
    /// served).
    pub median_ms: Option<f64>,
    /// `median_ms` minus the scenario's initial steady-state median —
    /// the latency inflation the event window inflicts.
    pub inflation_ms: Option<f64>,
    /// Weighted mean geographic path length of served users, km.
    pub mean_path_km: Option<f64>,
    /// Stylized BGP convergence time for this event, ms (grows with the
    /// fraction of users whose route changed; 0 when nothing moved).
    pub convergence_ms: f64,
    /// Queries landing at stale/degraded sites during the convergence
    /// window: the shifted users' query volume over that window.
    pub degraded_queries: f64,
    /// Per-user assignments the engine recomputed for this event.
    pub recomputed: u64,
    /// Per-user assignments the engine proved unaffected and reused.
    pub reused: u64,
    /// Worst relative capacity headroom `(cap − load) / cap` across the
    /// announced sites after this epoch. `None` when the engine runs
    /// without capacities (the default).
    pub headroom_frac: Option<f64>,
    /// Free-text epoch annotations: cancelled same-timestamp pairs,
    /// no-op drain events, and drain-abort reasons. Empty for plain
    /// epochs (rendered as `-` in CSV). Never contains commas — the
    /// CSV renderer does not escape.
    pub note: String,
}

/// The full per-event time series of one scenario run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timeline {
    /// Scenario name.
    pub scenario: String,
    /// One record per processed event, in simulated-time order, led by
    /// the `"init"` steady state.
    pub records: Vec<EpochRecord>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new(scenario: impl Into<String>) -> Self {
        Self { scenario: scenario.into(), records: Vec::new() }
    }

    /// Total queries that landed degraded across all events.
    pub fn total_degraded_queries(&self) -> f64 {
        self.records.iter().map(|r| r.degraded_queries).sum()
    }

    /// Worst per-event shifted fraction.
    pub fn max_shifted_frac(&self) -> f64 {
        self.records.iter().map(|r| r.shifted_frac).fold(0.0, f64::max)
    }

    /// Worst latency inflation over the run, ms.
    pub fn max_inflation_ms(&self) -> f64 {
        self.records
            .iter()
            .filter_map(|r| r.inflation_ms)
            .fold(0.0, f64::max)
    }

    /// Total assignments recomputed / reused over the run (the `init`
    /// epoch recomputes everyone by definition and is excluded).
    pub fn recompute_totals(&self) -> (u64, u64) {
        self.records
            .iter()
            .filter(|r| r.event != "init")
            .fold((0, 0), |(rc, ru), r| (rc + r.recomputed, ru + r.reused))
    }

    /// CSV-ready header for [`Timeline::rows`].
    pub fn header() -> Vec<String> {
        [
            "t_s",
            "event",
            "shifted",
            "shifted_frac",
            "unserved_frac",
            "median_ms",
            "inflation_ms",
            "mean_path_km",
            "convergence_s",
            "degraded_queries",
            "recomputed",
            "reused",
            "headroom_frac",
            "note",
        ]
        .map(String::from)
        .to_vec()
    }

    /// Deterministically formatted rows, one per record. All floats use
    /// fixed precision, so the rendering is byte-stable.
    pub fn rows(&self) -> Vec<Vec<String>> {
        let opt = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into());
        self.records
            .iter()
            .map(|r| {
                vec![
                    format!("{:.3}", r.t_ms / 1000.0),
                    r.event.clone(),
                    format!("{:.3}", r.shifted),
                    format!("{:.6}", r.shifted_frac),
                    format!("{:.6}", r.unserved_frac),
                    opt(r.median_ms),
                    opt(r.inflation_ms),
                    opt(r.mean_path_km),
                    format!("{:.3}", r.convergence_ms / 1000.0),
                    format!("{:.3}", r.degraded_queries),
                    r.recomputed.to_string(),
                    r.reused.to_string(),
                    r.headroom_frac
                        .map(|h| format!("{h:.4}"))
                        .unwrap_or_else(|| "-".into()),
                    if r.note.is_empty() { "-".into() } else { r.note.clone() },
                ]
            })
            .collect()
    }
}

/// Weighted median of `(value, weight)` points: the smallest value at
/// which the cumulative weight reaches half the total. `None` on empty
/// input or non-positive total weight. Sorting is by `total_cmp`, so
/// the result is deterministic for any input order.
pub fn weighted_median(points: &mut Vec<(f64, f64)>) -> Option<f64> {
    let total: f64 = points.iter().map(|(_, w)| w).sum();
    if points.is_empty() || total <= 0.0 {
        return None;
    }
    points.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut acc = 0.0;
    for (v, w) in points.iter() {
        acc += w;
        if acc >= total / 2.0 {
            return Some(*v);
        }
    }
    Some(points.last().expect("non-empty").0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_median_basic() {
        assert_eq!(weighted_median(&mut vec![]), None);
        assert_eq!(weighted_median(&mut vec![(5.0, 1.0)]), Some(5.0));
        // Heavy tail wins regardless of input order.
        assert_eq!(
            weighted_median(&mut vec![(1.0, 1.0), (100.0, 10.0), (2.0, 1.0)]),
            Some(100.0)
        );
        assert_eq!(weighted_median(&mut vec![(3.0, 0.0)]), None);
    }

    #[test]
    fn rows_are_deterministically_formatted() {
        let mut t = Timeline::new("demo");
        t.records.push(EpochRecord {
            t_ms: 1234.5,
            event: "init".into(),
            shifted: 0.0,
            shifted_frac: 0.0,
            unserved_frac: 0.0,
            median_ms: Some(12.3456),
            inflation_ms: None,
            mean_path_km: Some(100.0),
            convergence_ms: 0.0,
            degraded_queries: 0.0,
            recomputed: 10,
            reused: 0,
            headroom_frac: Some(0.25),
            note: String::new(),
        });
        let rows = t.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], "1.234");
        assert_eq!(rows[0][5], "12.346");
        assert_eq!(rows[0][6], "-");
        assert_eq!(rows[0][12], "0.2500");
        assert_eq!(rows[0][13], "-", "an empty note renders as a dash");
        assert_eq!(rows[0].len(), Timeline::header().len());
    }

    #[test]
    fn totals_exclude_init() {
        let mut t = Timeline::new("demo");
        for (event, rc, ru) in [("init", 100u64, 0u64), ("down site-0", 10, 90), ("up site-0", 20, 80)] {
            t.records.push(EpochRecord {
                t_ms: 0.0,
                event: event.into(),
                shifted: 0.0,
                shifted_frac: 0.0,
                unserved_frac: 0.0,
                median_ms: None,
                inflation_ms: None,
                mean_path_km: None,
                convergence_ms: 0.0,
                degraded_queries: 0.0,
                recomputed: rc,
                reused: ru,
                headroom_frac: None,
                note: String::new(),
            });
        }
        assert_eq!(t.recompute_totals(), (30, 170));
    }
}
