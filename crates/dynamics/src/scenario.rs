//! The scenario DSL: named, seeded timelines of routing events.
//!
//! A [`Scenario`] is a plain event list with a name — no interpreter,
//! no strings to parse. Builders cover the operational patterns the
//! experiments script: a flapping site, rolling maintenance drains
//! across a CDN ring, a correlated regional outage, and the loss of all
//! sessions toward one neighbor AS. Timing jitter is derived from
//! [`par::seed_for`] per event index, so a scenario is a pure function
//! of `(inputs, seed)` and replays byte-identically at any thread
//! count.

use crate::event::{RoutingEvent, ScheduledEvent};
use geo::GeoPoint;
use netsim::SimTime;
use serde::{Deserialize, Serialize};
use topology::{AnycastDeployment, Asn, SiteId};

/// A named timeline of routing events to drive one deployment through.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (shows up in spans and timeline artifacts).
    pub name: String,
    /// The scripted events. Order matters only for simultaneous events
    /// (the queue breaks time ties by insertion order).
    pub events: Vec<ScheduledEvent>,
}

/// Deterministic jitter fraction in `[0, 1)` for event `index` of the
/// scenario seeded by `seed` — [`par::seed_for`]'s per-index stream
/// mapped onto the unit interval.
pub fn jitter_frac(seed: u64, index: u64) -> f64 {
    (par::seed_for(seed, index) >> 11) as f64 / (1u64 << 53) as f64
}

impl Scenario {
    /// An empty scenario.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), events: Vec::new() }
    }

    /// Appends one event (builder style).
    pub fn at(mut self, t: SimTime, event: RoutingEvent) -> Self {
        self.events.push(ScheduledEvent { at: t, event });
        self
    }

    /// A site that flaps `flaps` times: down at
    /// `start + k·period ± jitter`, back up half a period later. Each
    /// edge gets independent jitter of up to `jitter_ms` (from `seed`),
    /// capped below a quarter period so down/up edges never reorder.
    pub fn site_flap(
        name: impl Into<String>,
        site: SiteId,
        start: SimTime,
        period_ms: f64,
        flaps: usize,
        jitter_ms: f64,
        seed: u64,
    ) -> Self {
        assert!(period_ms > 0.0, "flap period must be positive");
        let jitter_ms = jitter_ms.min(period_ms / 4.0 - 1.0).max(0.0);
        let mut s = Self::new(name);
        for k in 0..flaps {
            let base = start.plus_ms(k as f64 * period_ms);
            let down = base.plus_ms(jitter_ms * jitter_frac(seed, 2 * k as u64));
            let up = base
                .plus_ms(period_ms / 2.0)
                .plus_ms(jitter_ms * jitter_frac(seed, 2 * k as u64 + 1));
            s = s.at(down, RoutingEvent::SiteDown(site)).at(up, RoutingEvent::SiteUp(site));
        }
        s
    }

    /// One load-aware gradual drain: `site` escalates through `stages`
    /// withhold stages `stage_ms` apart, stays fully down for `hold_ms`
    /// (the maintenance window), then re-announces. Stage and end
    /// events are scheduled by the engine as each stage commits; a
    /// stage that would overload a surviving site aborts the drain
    /// instead (see `docs/DYNAMICS.md`).
    pub fn gradual_drain(
        name: impl Into<String>,
        site: SiteId,
        start: SimTime,
        stage_ms: f64,
        stages: u32,
        hold_ms: f64,
    ) -> Self {
        assert!(stage_ms > 0.0, "stage spacing must be positive");
        assert!(stages >= 1, "a drain needs at least one stage");
        assert!(hold_ms > 0.0, "maintenance hold must be positive");
        Self::new(name).at(start, RoutingEvent::DrainStart { site, stage_ms, stages, hold_ms })
    }

    /// Rolling maintenance: each listed site runs a gradual drain
    /// (`stages` escalations `stage_ms` apart, then `hold_ms` fully
    /// down), with starts staggered `stagger_ms` apart — the classic
    /// one-at-a-time CDN ring maintenance loop. Stage escalations and
    /// drain ends are scheduled by the engine when each
    /// [`RoutingEvent::DrainStart`] fires; pass `stages = 1` for the
    /// old binary down/up drain.
    pub fn rolling_drain(
        name: impl Into<String>,
        sites: &[SiteId],
        start: SimTime,
        stage_ms: f64,
        stages: u32,
        hold_ms: f64,
        stagger_ms: f64,
    ) -> Self {
        assert!(stage_ms > 0.0, "stage spacing must be positive");
        assert!(stages >= 1, "a drain needs at least one stage");
        assert!(hold_ms > 0.0, "maintenance hold must be positive");
        let mut s = Self::new(name);
        for (k, &site) in sites.iter().enumerate() {
            s = s.at(
                start.plus_ms(k as f64 * stagger_ms),
                RoutingEvent::DrainStart { site, stage_ms, stages, hold_ms },
            );
        }
        s
    }

    /// A correlated regional outage: every site of `deployment` within
    /// `radius_km` of `center` fails within a `jitter_ms` window after
    /// `start` (cascading, not instantaneous) and recovers after
    /// `duration_ms`, again with per-site jitter. Returns the scenario
    /// and the affected site ids (empty if the radius catches nothing).
    pub fn regional_outage(
        name: impl Into<String>,
        deployment: &AnycastDeployment,
        center: &GeoPoint,
        radius_km: f64,
        start: SimTime,
        duration_ms: f64,
        jitter_ms: f64,
        seed: u64,
    ) -> (Self, Vec<SiteId>) {
        let mut s = Self::new(name);
        let mut hit = Vec::new();
        for site in &deployment.sites {
            if site.location.distance_km(center) <= radius_km {
                hit.push(site.id);
            }
        }
        for (k, &site) in hit.iter().enumerate() {
            let down = start.plus_ms(jitter_ms * jitter_frac(seed, 2 * k as u64));
            let up = start
                .plus_ms(duration_ms)
                .plus_ms(jitter_ms * jitter_frac(seed, 2 * k as u64 + 1));
            s = s.at(down, RoutingEvent::SiteDown(site)).at(up, RoutingEvent::SiteUp(site));
        }
        (s, hit)
    }

    /// Loss of every session toward `neighbor` from `start`, restored
    /// `duration_ms` later.
    pub fn peering_flap(
        name: impl Into<String>,
        neighbor: Asn,
        start: SimTime,
        duration_ms: f64,
    ) -> Self {
        Self::new(name)
            .at(start, RoutingEvent::PeeringDown(neighbor))
            .at(start.plus_ms(duration_ms), RoutingEvent::PeeringUp(neighbor))
    }

    /// A ring promotion held for `hold_ms`, then demoted back: promote
    /// to swap-set entry `up` at `start`, demote to entry `down` at
    /// `start + hold_ms` — the R74 → R95 → R74 maintenance cycle the
    /// `dynring` experiment scripts.
    ///
    /// # Panics
    ///
    /// Panics when `hold_ms` is not positive: a zero hold would put the
    /// promote and demote in the same epoch, where an opposing pair to
    /// one ring cancels into a no-op.
    pub fn ring_swap(
        name: impl Into<String>,
        up: u32,
        down: u32,
        start: SimTime,
        hold_ms: f64,
    ) -> Self {
        assert!(hold_ms > 0.0, "hold_ms must be positive, got {hold_ms}");
        Self::new(name)
            .at(start, RoutingEvent::RingPromote { to: up })
            .at(start.plus_ms(hold_ms), RoutingEvent::RingDemote { to: down })
    }

    /// A capacity dip: `site`'s capacity scales by `factor` at `start`
    /// and is restored by the reciprocal factor `hold_ms` later — a
    /// rack failure (or provisioning change) inside a healthy site.
    /// No announcement moves, so only the headroom ledger and any
    /// attached load controller react.
    pub fn capacity_dip(
        name: impl Into<String>,
        site: SiteId,
        start: SimTime,
        factor: f64,
        hold_ms: f64,
    ) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "capacity factor must be positive");
        assert!(hold_ms > 0.0, "hold_ms must be positive, got {hold_ms}");
        Self::new(name)
            .at(start, RoutingEvent::CapacityScale { site, factor })
            .at(start.plus_ms(hold_ms), RoutingEvent::CapacityScale { site, factor: 1.0 / factor })
    }

    /// A flash crowd: demand within `radius_km` of `center` scales by
    /// `factor` at `start`, holds for `hold_ms` with controller ticks
    /// every `tick_ms`, then subsides (a second scale by `1/factor`),
    /// followed by one trailing tick so the recovery is observed. The
    /// ticks are the cadence an attached load controller acts on
    /// between routing events; without a controller they are recorded
    /// no-op epochs.
    pub fn flash_crowd(
        name: impl Into<String>,
        center: GeoPoint,
        radius_km: f64,
        factor: f64,
        start: SimTime,
        hold_ms: f64,
        tick_ms: f64,
    ) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "demand factor must be positive");
        assert!(tick_ms > 0.0, "tick spacing must be positive");
        assert!(hold_ms > tick_ms, "the hold must outlast one tick");
        let mut s =
            Self::new(name).at(start, RoutingEvent::DemandScale { center, radius_km, factor });
        let mut k = 1;
        while (k as f64) * tick_ms < hold_ms {
            s = s.at(start.plus_ms(k as f64 * tick_ms), RoutingEvent::LoadTick);
            k += 1;
        }
        s = s.at(
            start.plus_ms(hold_ms),
            RoutingEvent::DemandScale { center, radius_km, factor: 1.0 / factor },
        );
        s.at(start.plus_ms(hold_ms + tick_ms), RoutingEvent::LoadTick)
    }

    /// Appends `n` controller ticks every `every_ms` from `from`
    /// (builder style) — scheduled observation points for an attached
    /// load controller, recorded no-ops otherwise.
    pub fn ticks(mut self, from: SimTime, every_ms: f64, n: usize) -> Self {
        assert!(every_ms > 0.0, "tick spacing must be positive");
        for k in 0..n {
            self = self.at(from.plus_ms(k as f64 * every_ms), RoutingEvent::LoadTick);
        }
        self
    }

    /// The latest scripted event time (drain ends scheduled at run time
    /// may extend past this).
    pub fn horizon(&self) -> SimTime {
        SimTime(
            self.events
                .iter()
                .map(|e| e.at.as_ms())
                .fold(0.0, f64::max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for i in 0..100 {
            let f = jitter_frac(2021, i);
            assert!((0.0..1.0).contains(&f));
            assert_eq!(f, jitter_frac(2021, i));
        }
        assert_ne!(jitter_frac(2021, 0), jitter_frac(2021, 1));
        assert_ne!(jitter_frac(2021, 0), jitter_frac(2022, 0));
    }

    #[test]
    fn site_flap_alternates_down_up() {
        let s = Scenario::site_flap(
            "flap",
            SiteId(2),
            SimTime::from_secs(60.0),
            600_000.0,
            3,
            30_000.0,
            7,
        );
        assert_eq!(s.events.len(), 6);
        for pair in s.events.chunks(2) {
            assert!(matches!(pair[0].event, RoutingEvent::SiteDown(SiteId(2))));
            assert!(matches!(pair[1].event, RoutingEvent::SiteUp(SiteId(2))));
            assert!(pair[0].at < pair[1].at, "down precedes up within a flap");
        }
        assert!(s.horizon().as_ms() >= 60_000.0 + 2.0 * 600_000.0);
    }

    #[test]
    fn rolling_drain_staggers_starts() {
        let sites = [SiteId(0), SiteId(1), SiteId(2)];
        let s = Scenario::rolling_drain(
            "mnt",
            &sites,
            SimTime::ZERO,
            60_000.0,
            3,
            300_000.0,
            120_000.0,
        );
        assert_eq!(s.events.len(), 3);
        assert_eq!(s.events[1].at.as_ms() - s.events[0].at.as_ms(), 120_000.0);
        assert!(matches!(
            s.events[0].event,
            RoutingEvent::DrainStart { site: SiteId(0), stages: 3, .. }
        ));
    }

    #[test]
    fn gradual_drain_is_one_start_event() {
        let s = Scenario::gradual_drain("gd", SiteId(4), SimTime::from_secs(10.0), 30_000.0, 4, 600_000.0);
        assert_eq!(s.events.len(), 1);
        assert!(matches!(
            s.events[0].event,
            RoutingEvent::DrainStart { site: SiteId(4), stages: 4, .. }
        ));
        assert_eq!(s.horizon().as_secs(), 10.0);
    }

    #[test]
    fn ring_swap_promotes_then_demotes() {
        let s = Scenario::ring_swap("cycle", 3, 2, SimTime::from_secs(60.0), 1_800_000.0);
        assert_eq!(s.events.len(), 2);
        assert!(matches!(s.events[0].event, RoutingEvent::RingPromote { to: 3 }));
        assert!(matches!(s.events[1].event, RoutingEvent::RingDemote { to: 2 }));
        assert_eq!(s.events[1].at.as_ms() - s.events[0].at.as_ms(), 1_800_000.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ring_swap_zero_hold_panics() {
        Scenario::ring_swap("bad", 3, 2, SimTime::ZERO, 0.0);
    }

    #[test]
    fn flash_crowd_surges_ticks_and_subsides() {
        let c = GeoPoint::new(10.0, 20.0);
        let s = Scenario::flash_crowd(
            "fc",
            c,
            3000.0,
            2.0,
            SimTime::from_secs(60.0),
            300_000.0,
            60_000.0,
        );
        // Surge, 4 hold ticks (60..300 s exclusive), subside, 1 trailing tick.
        assert_eq!(s.events.len(), 7);
        assert!(matches!(
            s.events[0].event,
            RoutingEvent::DemandScale { factor, .. } if factor == 2.0
        ));
        assert!(matches!(s.events[1].event, RoutingEvent::LoadTick));
        assert!(matches!(
            s.events[5].event,
            RoutingEvent::DemandScale { factor, .. } if factor == 0.5
        ));
        assert_eq!(s.events[5].at.as_secs(), 360.0);
        assert!(matches!(s.events[6].event, RoutingEvent::LoadTick));
        assert_eq!(s.horizon().as_secs(), 420.0);
    }

    #[test]
    fn ticks_append_a_regular_cadence() {
        let s = Scenario::new("t").ticks(SimTime::from_secs(10.0), 5_000.0, 3);
        assert_eq!(s.events.len(), 3);
        assert!(s.events.iter().all(|e| matches!(e.event, RoutingEvent::LoadTick)));
        assert_eq!(s.events[2].at.as_secs(), 20.0);
    }

    #[test]
    fn peering_flap_brackets_the_outage() {
        let s = Scenario::peering_flap("pf", Asn(9), SimTime::from_hours(1.0), 1800_000.0);
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].at.as_secs(), 3600.0);
        assert_eq!(s.events[1].at.as_secs(), 5400.0);
    }
}
