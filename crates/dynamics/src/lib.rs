//! Routing dynamics: deterministic discrete-event simulation of
//! anycast deployments under operational churn.
//!
//! The static pipeline answers "where does traffic land?"; this crate
//! answers "what happens while that answer is changing?". A
//! [`Scenario`] scripts routing events — site failures and recoveries,
//! maintenance drains, prefix withdrawals, peering losses — onto
//! `netsim`'s simulated clock; the [`DynamicsEngine`] replays them over
//! a deployment and emits a per-event [`Timeline`]: users shifted,
//! latency inflation, stylized convergence time, queries landing
//! degraded, and how much per-user work the engine's incremental
//! recomputation saved over a full sweep.
//!
//! Everything is deterministic: the event queue breaks time ties by
//! insertion order, jitter derives from `par`'s per-index seed streams,
//! and re-ranking fans out on `par::ordered_map` — so a scenario's
//! timeline is byte-identical at any `--threads` value.

#![deny(missing_docs)]

pub mod engine;
pub mod event;
pub mod scenario;
pub mod timeline;

pub use engine::{DynUser, DynamicsEngine, RecomputeMode};
pub use event::{EventQueue, RoutingEvent, ScheduledEvent};
pub use scenario::{jitter_frac, Scenario};
pub use timeline::{weighted_median, EpochRecord, Timeline};
