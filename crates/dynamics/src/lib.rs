//! Routing dynamics: deterministic discrete-event simulation of
//! anycast deployments under operational churn.
//!
//! The static pipeline answers "where does traffic land?"; this crate
//! answers "what happens while that answer is changing?". A
//! [`Scenario`] scripts routing events — site failures and recoveries,
//! load-aware gradual maintenance drains, prefix withdrawals, peering
//! losses, and ring promotions/demotions that swap the whole effective
//! deployment (see [`SwapDeployment`]) — onto `netsim`'s simulated
//! clock; the [`DynamicsEngine`]
//! replays them over a deployment and emits a per-epoch [`Timeline`]:
//! users shifted, latency inflation, stylized convergence time,
//! queries landing degraded, capacity headroom, and how much per-user
//! work the engine's incremental recomputation saved over a full
//! sweep.
//!
//! Two semantics set this engine apart from a naive event loop, both
//! specified in `docs/DYNAMICS.md`:
//!
//! * **Batched epochs** — every event sharing one `SimTime` applies as
//!   a single epoch with one incremental recompute and defined
//!   precedence; opposing same-timestamp pairs (`SiteUp` + `SiteDown`
//!   of one site) cancel into a recorded no-op flap, so scenario
//!   authors are never insertion-order-sensitive.
//! * **Load-aware drains** — a drain escalates through staged
//!   per-neighbor withholds (lightest sessions first) and, when the
//!   engine carries `analysis` capacities, every stage is checked
//!   against surviving sites' load limits; a stage that would overload
//!   a survivor aborts the drain and rolls the catchment back
//!   byte-identically instead of committing.
//!
//! On top of both sits *closed-loop load management*: attach a
//! `loadmgmt` controller ([`DynamicsEngine::with_controller`]) and
//! each epoch ends with up to `max_rounds` observe → decide → apply
//! rounds at the same `SimTime` — per-neighbor session sheds and
//! releases recorded as `ctrl[…]` timeline rows and ledgered under
//! `dynamics.load.*` (see [`LoadLedger`]). Demand-side events
//! ([`RoutingEvent::DemandScale`], [`RoutingEvent::LoadTick`]) script
//! the flash crowds and controller cadences the `dynload` experiment
//! family compares policies on.
//!
//! Everything is deterministic: the event queue breaks time ties by
//! insertion order, jitter derives from `par`'s per-index seed streams,
//! and re-ranking fans out on `par::ordered_map` — so a scenario's
//! timeline is byte-identical at any `--threads` value.

#![deny(missing_docs)]

pub mod columnar;
pub mod engine;
pub mod event;
pub mod scenario;
pub mod timeline;

pub use columnar::{expand_counts, Cohort, GroupIndex, UserColumns, NO_ASN, NO_KEY, NO_SITE};
pub use engine::{
    DynUser, DynamicsEngine, EpochStepper, LoadLedger, RecomputeMode, ServingCohort,
    SwapDeployment,
};
pub use event::{EventQueue, RoutingEvent, ScheduledEvent};
pub use scenario::{jitter_frac, Scenario};
pub use timeline::{weighted_median, EpochRecord, Timeline};
