//! Routing events and the deterministic discrete-event queue.
//!
//! A [`RoutingEvent`] is one atomic change to a deployment's announced
//! state — the operational vocabulary of anycast: sites failing and
//! recovering, operators draining sites for maintenance, whole hosts
//! withdrawing the prefix, and the deployment losing (or regaining) all
//! peering sessions toward one neighbor AS. The [`EventQueue`] orders
//! them by simulated time with insertion order as the tie-break, so a
//! timeline replays identically on every run — the engine's whole
//! output hangs off this ordering.

use geo::GeoPoint;
use netsim::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use topology::{Asn, SiteId};

/// One atomic routing change applied to a deployment at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RoutingEvent {
    /// The site fails abruptly and its announcement is withdrawn.
    SiteDown(SiteId),
    /// The site recovers and re-announces.
    SiteUp(SiteId),
    /// A load-aware maintenance drain begins. The site hands its
    /// catchment off gradually: each stage withholds the announcement
    /// from a growing slice of the host's neighbor sessions
    /// (lightest-loaded first), and the final stage withdraws the site
    /// entirely. Drains are the one event family that generates
    /// follow-up events inside the simulation — the engine schedules
    /// each [`RoutingEvent::DrainStage`] and the closing
    /// [`RoutingEvent::DrainEnd`] itself, and only once the stage's
    /// post-recompute load check passes (see the engine's drain state
    /// machine and `docs/DYNAMICS.md`).
    DrainStart {
        /// Site being drained.
        site: SiteId,
        /// Simulated time between successive stage escalations.
        stage_ms: f64,
        /// Total escalation stages, the last being the full withdrawal.
        /// `1` degenerates to the old binary down/up drain.
        stages: u32,
        /// How long the fully-drained site stays down before
        /// re-announcing (the maintenance window proper).
        hold_ms: f64,
    },
    /// Engine-scheduled escalation of a running drain. `gen` is the
    /// drain's generation stamp: a stage whose generation no longer
    /// matches (the drain was aborted, completed, or restarted in the
    /// meantime) is a recorded no-op.
    DrainStage {
        /// Site being drained.
        site: SiteId,
        /// Generation stamp of the drain this stage belongs to.
        gen: u64,
    },
    /// Maintenance drain ends: the site re-announces. Generation-stamped
    /// like [`RoutingEvent::DrainStage`].
    DrainEnd {
        /// Site whose drain ends.
        site: SiteId,
        /// Generation stamp of the drain this end belongs to.
        gen: u64,
    },
    /// The host AS withdraws the anycast prefix entirely (all the sites
    /// it hosts go dark at once).
    PrefixWithdraw(Asn),
    /// The host AS re-announces the prefix.
    PrefixRestore(Asn),
    /// The deployment loses every peering/transit session toward one
    /// neighbor AS: all hosts stop announcing to it (the withhold
    /// machinery of §7.1, flipped from optimization to outage).
    PeeringDown(Asn),
    /// Sessions toward the neighbor come back.
    PeeringUp(Asn),
    /// Ring promotion: the engine's effective deployment is replaced by
    /// entry `to` of its registered swap set
    /// (`DynamicsEngine::with_swap_set`) — one batched epoch of site
    /// additions and removals with a single recompute, re-keying
    /// per-user state across the site-id remap. Named for the CDN
    /// operation it scripts (R74 → R95); semantically identical to
    /// [`RoutingEvent::DeploymentSwap`], but a same-`SimTime`
    /// promote+demote pair targeting one ring cancels into a recorded
    /// no-op.
    RingPromote {
        /// Index of the target deployment in the engine's swap set.
        to: u32,
    },
    /// Ring demotion: the inverse operation (R95 → R74). See
    /// [`RoutingEvent::RingPromote`].
    RingDemote {
        /// Index of the target deployment in the engine's swap set.
        to: u32,
    },
    /// A general deployment swap with no promotion/demotion intent
    /// attached — the escape hatch for non-nested swap sets. Never
    /// cancels against promote/demote events.
    DeploymentSwap {
        /// Index of the target deployment in the engine's swap set.
        to: u32,
    },
    /// Demand within `radius_km` of `center` scales by `factor`: every
    /// user cohort there multiplies its weight and query volume — the
    /// flash-crowd / regional-surge primitive. A demand change moves
    /// no announcements, so assignments are untouched; only loads (and
    /// any attached load controller's view of them) change. Restore
    /// with a second event carrying the reciprocal factor.
    DemandScale {
        /// Center of the demand change.
        center: GeoPoint,
        /// Radius of the affected region, km.
        radius_km: f64,
        /// Multiplier applied to cohort weight and queries per day
        /// (must be positive and finite).
        factor: f64,
    },
    /// The site's serving capacity scales by `factor` — hardware added
    /// or removed, a rack failure inside a healthy site, a provisioning
    /// change. Like [`RoutingEvent::DemandScale`] it moves no
    /// announcements, so assignments are untouched; only the headroom
    /// ledger (and any attached load controller's decisions) see it.
    /// On an engine without capacities it is a recorded no-op. Restore
    /// with a second event carrying the reciprocal factor.
    CapacityScale {
        /// Site whose capacity changes.
        site: SiteId,
        /// Multiplier applied to the site's capacity (must be positive
        /// and finite).
        factor: f64,
    },
    /// A scheduled no-op observation point: the epoch applies nothing,
    /// but an attached load controller still runs its decision rounds
    /// — how scenarios give a controller a cadence between routing
    /// events (and how oscillating policies are caught oscillating).
    LoadTick,
}

impl RoutingEvent {
    /// Short human label for timeline rows, e.g. `"down site-3"`.
    pub fn label(&self) -> String {
        match self {
            RoutingEvent::SiteDown(s) => format!("down {s}"),
            RoutingEvent::SiteUp(s) => format!("up {s}"),
            RoutingEvent::DrainStart { site, .. } => format!("drain-start {site}"),
            RoutingEvent::DrainStage { site, .. } => format!("drain-stage {site}"),
            RoutingEvent::DrainEnd { site, .. } => format!("drain-end {site}"),
            RoutingEvent::PrefixWithdraw(a) => format!("withdraw {a}"),
            RoutingEvent::PrefixRestore(a) => format!("restore {a}"),
            RoutingEvent::PeeringDown(a) => format!("peering-down {a}"),
            RoutingEvent::PeeringUp(a) => format!("peering-up {a}"),
            RoutingEvent::RingPromote { to } => format!("promote ring-{to}"),
            RoutingEvent::RingDemote { to } => format!("demote ring-{to}"),
            RoutingEvent::DeploymentSwap { to } => format!("swap ring-{to}"),
            RoutingEvent::DemandScale { factor, .. } => format!("surge x{factor:.2}"),
            RoutingEvent::CapacityScale { site, factor } => format!("cap {site} x{factor:.2}"),
            RoutingEvent::LoadTick => "tick".to_string(),
        }
    }
}

/// An event bound to a simulated instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledEvent {
    /// When the event fires.
    pub at: SimTime,
    /// What happens.
    pub event: RoutingEvent,
}

/// Heap entry: time first, then insertion sequence so simultaneous
/// events replay in the order they were scheduled.
#[derive(Debug)]
struct Queued {
    at_ms: f64,
    seq: u64,
    event: RoutingEvent,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at_ms.total_cmp(&other.at_ms) == Ordering::Equal && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest
        // (time, seq) out first.
        other
            .at_ms
            .total_cmp(&self.at_ms)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of [`ScheduledEvent`]s.
///
/// Ordering is `(time, insertion sequence)`: ties in simulated time
/// resolve to whichever event was pushed first, never to heap
/// internals, so the replay order is a pure function of the pushes.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Queued>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a queue from a scenario's event list (pushed in order, so
    /// list order breaks simultaneous-event ties).
    pub fn from_events(events: impl IntoIterator<Item = ScheduledEvent>) -> Self {
        let mut q = Self::new();
        for e in events {
            q.push(e.at, e.event);
        }
        q
    }

    /// Schedules `event` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics on NaN times — an event must fire at a real instant.
    pub fn push(&mut self, at: SimTime, event: RoutingEvent) {
        assert!(!at.as_ms().is_nan(), "event time must not be NaN");
        self.heap.push(Queued { at_ms: at.as_ms(), seq: self.seq, event });
        self.seq += 1;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap
            .pop()
            .map(|q| ScheduledEvent { at: SimTime(q.at_ms), event: q.event })
    }

    /// The firing time of the earliest pending event, if any — what the
    /// engine uses to gather every event sharing one `SimTime` into a
    /// single batched epoch.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|q| SimTime(q.at_ms))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(30.0), RoutingEvent::SiteUp(SiteId(0)));
        q.push(SimTime::from_secs(10.0), RoutingEvent::SiteDown(SiteId(0)));
        q.push(SimTime::from_secs(20.0), RoutingEvent::PeeringDown(Asn(9)));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.as_secs()).collect();
        assert_eq!(order, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        q.push(t, RoutingEvent::SiteDown(SiteId(1)));
        q.push(t, RoutingEvent::SiteDown(SiteId(2)));
        q.push(t, RoutingEvent::SiteDown(SiteId(0)));
        let order: Vec<RoutingEvent> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(
            order,
            vec![
                RoutingEvent::SiteDown(SiteId(1)),
                RoutingEvent::SiteDown(SiteId(2)),
                RoutingEvent::SiteDown(SiteId(0)),
            ]
        );
    }

    #[test]
    fn labels_are_short_and_stable() {
        assert_eq!(RoutingEvent::SiteDown(SiteId(3)).label(), "down site-3");
        assert_eq!(RoutingEvent::PeeringDown(Asn(42)).label(), "peering-down AS42");
        assert_eq!(
            RoutingEvent::DrainStart { site: SiteId(1), stage_ms: 5.0, stages: 3, hold_ms: 9.0 }
                .label(),
            "drain-start site-1"
        );
        assert_eq!(RoutingEvent::DrainStage { site: SiteId(2), gen: 7 }.label(), "drain-stage site-2");
        assert_eq!(RoutingEvent::DrainEnd { site: SiteId(2), gen: 7 }.label(), "drain-end site-2");
        assert_eq!(RoutingEvent::RingPromote { to: 3 }.label(), "promote ring-3");
        assert_eq!(RoutingEvent::RingDemote { to: 2 }.label(), "demote ring-2");
        assert_eq!(RoutingEvent::DeploymentSwap { to: 0 }.label(), "swap ring-0");
        assert_eq!(
            RoutingEvent::DemandScale {
                center: GeoPoint::new(0.0, 0.0),
                radius_km: 500.0,
                factor: 1.75
            }
            .label(),
            "surge x1.75"
        );
        assert_eq!(
            RoutingEvent::CapacityScale { site: SiteId(4), factor: 0.8 }.label(),
            "cap site-4 x0.80"
        );
        assert_eq!(RoutingEvent::LoadTick.label(), "tick");
    }

    #[test]
    fn next_time_previews_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(SimTime::from_secs(9.0), RoutingEvent::SiteUp(SiteId(0)));
        q.push(SimTime::from_secs(4.0), RoutingEvent::SiteDown(SiteId(0)));
        assert_eq!(q.next_time(), Some(SimTime::from_secs(4.0)));
        assert_eq!(q.len(), 2, "peeking must not consume");
        q.pop();
        assert_eq!(q.next_time(), Some(SimTime::from_secs(9.0)));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_event_time_panics() {
        EventQueue::new().push(SimTime(f64::NAN), RoutingEvent::SiteUp(SiteId(0)));
    }
}
