//! Property tests for the columnar million-user core: random
//! flap/drain/swap gauntlets over a 50k-user expanded population must
//! keep the incremental slice-invalidation path record-for-record
//! equal to the full-recompute oracle, conserve users, and keep the
//! recompute ledger balanced (`recomputed + reused = population`).

use anycast_dynamics::{
    expand_counts, DynUser, DynamicsEngine, RecomputeMode, RoutingEvent, Scenario, SwapDeployment,
};
use cdn::{Cdn, CdnConfig};
use netsim::{LatencyModel, SimTime};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use topology::gen::Internet;
use topology::{InternetGenerator, SiteId, TopologyConfig};

const POPULATION: usize = 50_000;

/// One shared world: building the topology dominates a proptest case,
/// so all cases replay scenarios over the same (immutable) internet.
/// The expansion counts are likewise shared — they are a pure function
/// of the (uniform) source weights.
fn world() -> &'static (Internet, Cdn, Vec<DynUser>, Vec<u32>) {
    static WORLD: OnceLock<(Internet, Cdn, Vec<DynUser>, Vec<u32>)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut net = InternetGenerator::generate(&TopologyConfig::small(131));
        let cdn = Cdn::build(&mut net, &CdnConfig { scale: 0.12, ..CdnConfig::small() });
        let users: Vec<DynUser> = net
            .user_locations()
            .iter()
            .map(|l| DynUser {
                asn: l.asn,
                location: net.world.region(l.region).center,
                weight: 1.0,
                queries_per_day: 1_000.0,
            })
            .collect();
        let counts =
            expand_counts(&users.iter().map(|u| u.weight).collect::<Vec<_>>(), POPULATION, 2021);
        (net, cdn, users, counts)
    })
}

fn swap_set(cdn: &Cdn) -> Vec<SwapDeployment> {
    cdn.rings
        .iter()
        .map(|r| SwapDeployment {
            deployment: Arc::clone(&r.deployment),
            universe: cdn.ring_universe(r),
        })
        .collect()
}

fn engine(ring: usize, mode: RecomputeMode) -> DynamicsEngine<'static> {
    let (net, cdn, users, counts) = world();
    DynamicsEngine::new_expanded(
        &net.graph,
        Arc::clone(&cdn.rings[ring].deployment),
        LatencyModel::default(),
        users,
        counts,
        2021,
        mode,
    )
    .with_swap_set(swap_set(cdn), ring)
}

/// Raw generated step: (kind, site selector, ring selector, second).
/// Selectors are reduced modulo the world's actual sizes in the test
/// body so the strategy stays independent of the topology scale.
type Step = (u8, u32, u32, u32);

fn scenario_from(steps: &[Step]) -> Scenario {
    let (_, cdn, _, _) = world();
    let n_rings = cdn.rings.len() as u32;
    // Sites of the smallest ring exist in every ring, so targeting
    // them is valid whatever deployment a prior swap left effective.
    let n_min = cdn.rings[0].deployment.sites.len() as u32;
    let mut s = Scenario::new("columnar-prop");
    for &(kind, site, ring, sec) in steps {
        let site = SiteId(site % n_min);
        let to = ring % n_rings;
        let t = SimTime::from_secs(f64::from(sec));
        s = match kind % 5 {
            0 => s.at(t, RoutingEvent::RingPromote { to }),
            1 => s.at(t, RoutingEvent::RingDemote { to }),
            2 => s.at(t, RoutingEvent::SiteDown(site)),
            3 => s.at(t, RoutingEvent::SiteUp(site)),
            _ => s.at(
                t,
                RoutingEvent::DrainStart {
                    site,
                    stage_ms: 20_000.0,
                    stages: 2,
                    hold_ms: 40_000.0,
                },
            ),
        };
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The incremental columnar path must be indistinguishable from
    /// the full-recompute oracle under arbitrary churn at 50k expanded
    /// users: every epoch record field-for-field equal, every per-user
    /// row equal, users conserved, and the recompute ledger balanced.
    #[test]
    fn columnar_incremental_matches_oracle_at_50k_users(
        steps in proptest::collection::vec((0u8..5, 0u32..64, 0u32..8, 1u32..30), 1..8)
    ) {
        let mut inc = engine(2, RecomputeMode::Incremental);
        let mut full = engine(2, RecomputeMode::Full);
        prop_assert_eq!(inc.population(), POPULATION);
        let scenario = scenario_from(&steps);
        let ti = inc.run(&scenario);
        let tf = full.run(&scenario);
        prop_assert_eq!(ti.records.len(), tf.records.len());
        for (a, b) in ti.records.iter().zip(&tf.records) {
            prop_assert_eq!(a.t_ms, b.t_ms);
            prop_assert_eq!(&a.event, &b.event);
            prop_assert_eq!(a.shifted, b.shifted, "at {}", a.event);
            prop_assert_eq!(a.shifted_frac, b.shifted_frac, "at {}", a.event);
            prop_assert_eq!(a.unserved_frac, b.unserved_frac, "at {}", a.event);
            prop_assert_eq!(a.median_ms, b.median_ms, "at {}", a.event);
            prop_assert_eq!(a.inflation_ms, b.inflation_ms, "at {}", a.event);
            prop_assert_eq!(a.mean_path_km, b.mean_path_km, "at {}", a.event);
            prop_assert_eq!(a.convergence_ms, b.convergence_ms, "at {}", a.event);
            prop_assert_eq!(a.degraded_queries, b.degraded_queries, "at {}", a.event);
            prop_assert_eq!(&a.note, &b.note, "at {}", a.event);
            // Ledger identity, epoch by epoch, in user units.
            prop_assert_eq!(a.recomputed + a.reused, POPULATION as u64, "at {}", a.event);
            prop_assert_eq!(b.recomputed, POPULATION as u64, "the oracle reuses nothing");
        }
        // User conservation and row-level equality: the 50k columnar
        // rows of both engines agree user by user.
        let si = inc.user_snapshot();
        let sf = full.user_snapshot();
        prop_assert_eq!(si.len(), POPULATION, "user rows are conserved");
        prop_assert_eq!(si, sf, "incremental rows equal the oracle's");
        // Sampled spot-check against the engine's own ledger: the
        // slice walk never claims more work than a scan.
        let (slice, scan) = inc.invalidation_ledger();
        prop_assert!(slice <= scan, "slice {} cannot exceed scan {}", slice, scan);
    }
}
