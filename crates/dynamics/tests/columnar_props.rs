//! Property tests for the columnar million-user core: random
//! flap/drain/swap/surge gauntlets over a 50k-user expanded population
//! must keep the incremental slice-invalidation path record-for-record
//! equal to the full-recompute oracle, conserve users, and keep the
//! recompute ledger balanced (`recomputed + reused = population`) —
//! with or without a load controller acting in the loop.

mod common;

use anycast_dynamics::{
    expand_counts, DynUser, DynamicsEngine, RecomputeMode, RoutingEvent, Scenario,
};
use analysis::SiteCapacities;
use cdn::Cdn;
use common::swap_set;
use loadmgmt::HysteresisController;
use netsim::{LatencyModel, SimTime};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use topology::gen::Internet;
use topology::SiteId;

const POPULATION: usize = 50_000;

/// One shared world: building the topology dominates a proptest case,
/// so all cases replay scenarios over the same (immutable) internet.
/// The expansion counts are likewise shared — they are a pure function
/// of the (uniform) source weights.
fn world() -> &'static (Internet, Cdn, Vec<DynUser>, Vec<u32>) {
    static WORLD: OnceLock<(Internet, Cdn, Vec<DynUser>, Vec<u32>)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let (net, cdn, users) = common::cdn_world(131);
        let counts =
            expand_counts(&users.iter().map(|u| u.weight).collect::<Vec<_>>(), POPULATION, 2021);
        (net, cdn, users, counts)
    })
}

fn engine(ring: usize, mode: RecomputeMode) -> DynamicsEngine<'static> {
    let (net, cdn, users, counts) = world();
    DynamicsEngine::new_expanded(
        &net.graph,
        Arc::clone(&cdn.rings[ring].deployment),
        LatencyModel::default(),
        users,
        counts,
        2021,
        mode,
    )
    .with_swap_set(swap_set(cdn), ring)
}

/// Raw generated step: (kind, site selector, ring selector, second).
/// Selectors are reduced modulo the world's actual sizes in the test
/// body so the strategy stays independent of the topology scale.
type Step = (u8, u32, u32, u32);

fn scenario_from(steps: &[Step]) -> Scenario {
    let (_, cdn, _, _) = world();
    let n_rings = cdn.rings.len() as u32;
    // Sites of the smallest ring exist in every ring, so targeting
    // them is valid whatever deployment a prior swap left effective.
    let n_min = cdn.rings[0].deployment.sites.len() as u32;
    let mut s = Scenario::new("columnar-prop");
    for &(kind, site, ring, sec) in steps {
        let site = SiteId(site % n_min);
        let to = ring % n_rings;
        let t = SimTime::from_secs(f64::from(sec));
        s = match kind % 7 {
            0 => s.at(t, RoutingEvent::RingPromote { to }),
            1 => s.at(t, RoutingEvent::RingDemote { to }),
            2 => s.at(t, RoutingEvent::SiteDown(site)),
            3 => s.at(t, RoutingEvent::SiteUp(site)),
            4 => s.at(
                t,
                RoutingEvent::DrainStart {
                    site,
                    stage_ms: 20_000.0,
                    stages: 2,
                    hold_ms: 40_000.0,
                },
            ),
            5 => s.at(t, surge(site, ring)),
            _ => s.at(t, RoutingEvent::LoadTick),
        };
    }
    s
}

/// A regional demand surge centred on one of the smallest ring's sites
/// (a pure function of the step tuple, factors clear of 1.0 both ways).
fn surge(site: SiteId, ring: u32) -> RoutingEvent {
    let (_, cdn, _, _) = world();
    RoutingEvent::DemandScale {
        center: cdn.rings[0].deployment.sites[site.0 as usize].location,
        radius_km: 2_500.0 + f64::from(ring % 4) * 1_500.0,
        factor: if ring % 2 == 0 { 1.2 + f64::from(ring % 8) * 0.2 } else { 0.7 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The incremental columnar path must be indistinguishable from
    /// the full-recompute oracle under arbitrary churn at 50k expanded
    /// users: every epoch record field-for-field equal, every per-user
    /// row equal, users conserved, and the recompute ledger balanced.
    #[test]
    fn columnar_incremental_matches_oracle_at_50k_users(
        steps in proptest::collection::vec((0u8..7, 0u32..64, 0u32..8, 1u32..30), 1..8)
    ) {
        let mut inc = engine(2, RecomputeMode::Incremental);
        let mut full = engine(2, RecomputeMode::Full);
        prop_assert_eq!(inc.population(), POPULATION);
        let scenario = scenario_from(&steps);
        let ti = inc.run(&scenario);
        let tf = full.run(&scenario);
        prop_assert_eq!(ti.records.len(), tf.records.len());
        for (a, b) in ti.records.iter().zip(&tf.records) {
            prop_assert_eq!(a.t_ms, b.t_ms);
            prop_assert_eq!(&a.event, &b.event);
            prop_assert_eq!(a.shifted, b.shifted, "at {}", a.event);
            prop_assert_eq!(a.shifted_frac, b.shifted_frac, "at {}", a.event);
            prop_assert_eq!(a.unserved_frac, b.unserved_frac, "at {}", a.event);
            prop_assert_eq!(a.median_ms, b.median_ms, "at {}", a.event);
            prop_assert_eq!(a.inflation_ms, b.inflation_ms, "at {}", a.event);
            prop_assert_eq!(a.mean_path_km, b.mean_path_km, "at {}", a.event);
            prop_assert_eq!(a.convergence_ms, b.convergence_ms, "at {}", a.event);
            prop_assert_eq!(a.degraded_queries, b.degraded_queries, "at {}", a.event);
            prop_assert_eq!(&a.note, &b.note, "at {}", a.event);
            // Ledger identity, epoch by epoch, in user units.
            prop_assert_eq!(a.recomputed + a.reused, POPULATION as u64, "at {}", a.event);
            prop_assert_eq!(b.recomputed, POPULATION as u64, "the oracle reuses nothing");
        }
        // User conservation and row-level equality: the 50k columnar
        // rows of both engines agree user by user.
        let si = inc.user_snapshot();
        let sf = full.user_snapshot();
        prop_assert_eq!(si.len(), POPULATION, "user rows are conserved");
        prop_assert_eq!(si, sf, "incremental rows equal the oracle's");
        // Sampled spot-check against the engine's own ledger: the
        // slice walk never claims more work than a scan.
        let (slice, scan) = inc.invalidation_ledger();
        prop_assert!(slice <= scan, "slice {} cannot exceed scan {}", slice, scan);
    }

    /// The same contract with a hysteresis controller in the loop:
    /// shed/release rounds are part of the deterministic replay, so
    /// the incremental engine must still match the oracle record for
    /// record (and ledger for ledger) under churn plus surges plus
    /// controller action.
    #[test]
    fn columnar_incremental_matches_oracle_under_controller_rounds(
        steps in proptest::collection::vec((0u8..7, 0u32..64, 0u32..8, 1u32..30), 1..8)
    ) {
        // Swap events are out of the alphabet here: capacities and
        // swap sets are mutually exclusive engine features, so the
        // load engine maps them onto flaps instead.
        let steps: Vec<Step> = steps
            .iter()
            .map(|&(kind, site, ring, sec)| match kind % 7 {
                0 => (2u8, site, ring, sec),
                1 => (3u8, site, ring, sec),
                k => (k, site, ring, sec),
            })
            .collect();
        let mut inc = load_engine(RecomputeMode::Incremental);
        let mut full = load_engine(RecomputeMode::Full);
        // Guaranteed observation points so the controller always gets
        // rounds, whatever the generated alphabet rolled.
        let scenario = scenario_from(&steps).ticks(SimTime::from_secs(40.0), 20_000.0, 6);
        let ti = inc.run(&scenario);
        let tf = full.run(&scenario);
        prop_assert_eq!(ti.records.len(), tf.records.len());
        for (a, b) in ti.records.iter().zip(&tf.records) {
            // Everything observable must match; the recomputed/reused
            // split is the two modes' one intended difference.
            prop_assert_eq!(a.t_ms, b.t_ms);
            prop_assert_eq!(&a.event, &b.event);
            prop_assert_eq!(a.shifted, b.shifted, "at {}", a.event);
            prop_assert_eq!(a.unserved_frac, b.unserved_frac, "at {}", a.event);
            prop_assert_eq!(a.median_ms, b.median_ms, "at {}", a.event);
            prop_assert_eq!(a.degraded_queries, b.degraded_queries, "at {}", a.event);
            prop_assert_eq!(a.headroom_frac, b.headroom_frac, "at {}", a.event);
            prop_assert_eq!(&a.note, &b.note, "at {}", a.event);
            prop_assert_eq!(a.recomputed + a.reused, POPULATION as u64, "at {}", a.event);
        }
        // Rounds count only effective (shedding/releasing) decisions,
        // so a gentle case can leave them at zero — what must hold is
        // that both modes agree on every ledger entry, bit for bit.
        let (li, lf) = (inc.load_ledger(), full.load_ledger());
        prop_assert_eq!(li.controller_rounds, lf.controller_rounds);
        prop_assert_eq!(li.shed_users.to_bits(), lf.shed_users.to_bits());
        prop_assert_eq!(li.released_users.to_bits(), lf.released_users.to_bits());
        prop_assert_eq!(li.overload_user_ms.to_bits(), lf.overload_user_ms.to_bits());
        prop_assert_eq!(inc.user_snapshot(), full.user_snapshot());
    }
}

/// An expanded engine over the third ring with tight capacities and a
/// hysteresis controller — no swap set (capacities exclude one).
fn load_engine(mode: RecomputeMode) -> DynamicsEngine<'static> {
    let (net, cdn, users, counts) = world();
    let eng = DynamicsEngine::new_expanded(
        &net.graph,
        Arc::clone(&cdn.rings[2].deployment),
        LatencyModel::default(),
        users,
        counts,
        2021,
        mode,
    );
    let caps = SiteCapacities::from_headroom(&eng.site_loads(), 1.05, 1.0);
    eng.with_capacities(caps).with_controller(Box::new(HysteresisController::default()))
}
