//! Mid-stream resume: an [`EpochStepper`] paused after K epochs and
//! continued — even under a different thread count, or observed
//! through its records mid-flight — must land on the byte-identical
//! timeline of an uninterrupted run and of the one-shot
//! [`DynamicsEngine::run`].
//!
//! This is what the chaos harness and the live replay driver lean on:
//! both interleave their own work (invariant checks, query windows)
//! between epochs, and neither is allowed to perturb the timeline by
//! doing so.

mod common;

use anycast_dynamics::{
    DynUser, DynamicsEngine, EpochStepper, RecomputeMode, RoutingEvent, Scenario, Timeline,
};
use common::threads_lock;
use netsim::{LatencyModel, SimTime};
use std::sync::{Arc, OnceLock};
use topology::gen::Internet;
use topology::{AnycastDeployment, SiteId};

fn world() -> &'static (Internet, Arc<AnycastDeployment>, Vec<DynUser>) {
    static WORLD: OnceLock<(Internet, Arc<AnycastDeployment>, Vec<DynUser>)> = OnceLock::new();
    WORLD.get_or_init(|| common::flat_world(111, 4, "resume-world"))
}

fn engine() -> DynamicsEngine<'static> {
    let (net, dep, users) = world();
    DynamicsEngine::new(
        &net.graph,
        Arc::clone(dep),
        LatencyModel::default(),
        users.clone(),
        RecomputeMode::Incremental,
    )
}

/// Churn rich enough to cross the pause point mid-drain: the paused
/// stepper holds live engine-scheduled follow-ups when it stops.
fn scenario() -> Scenario {
    Scenario::new("resume-gauntlet")
        .at(SimTime::from_secs(60.0), RoutingEvent::SiteDown(SiteId(0)))
        .at(SimTime::from_secs(120.0), RoutingEvent::SiteUp(SiteId(0)))
        .at(
            SimTime::from_secs(180.0),
            RoutingEvent::DrainStart {
                site: SiteId(1),
                stage_ms: 30_000.0,
                stages: 3,
                hold_ms: 90_000.0,
            },
        )
        .at(SimTime::from_secs(240.0), RoutingEvent::SiteDown(SiteId(2)))
        .at(SimTime::from_secs(420.0), RoutingEvent::SiteUp(SiteId(2)))
        .ticks(SimTime::from_secs(500.0), 30_000.0, 4)
}

/// Runs the stepper in one uninterrupted burst.
fn straight_through() -> Vec<Vec<String>> {
    let mut eng = engine();
    let s = scenario();
    let mut stepper = EpochStepper::new(&eng, &s);
    while stepper.step(&mut eng) {}
    stepper.finish(&mut eng).rows()
}

#[test]
fn pausing_after_k_epochs_is_invisible_in_the_timeline() {
    let _g = threads_lock();
    let reference = straight_through();
    assert_eq!(reference, {
        let mut eng = engine();
        eng.run(&scenario()).rows()
    }, "stepping epoch-by-epoch equals the one-shot run");

    // Pause at every possible K (including mid-drain), observe the
    // prefix, then continue: the final timeline must not notice.
    let total_epochs = reference.len();
    for k in [1usize, 3, 5, 7] {
        if k >= total_epochs {
            break;
        }
        let mut eng = engine();
        let s = scenario();
        let mut stepper = EpochStepper::new(&eng, &s);
        for _ in 0..k {
            assert!(stepper.step(&mut eng), "scenario has more than {k} epochs");
        }
        // Mid-stream observation: the records so far are exactly the
        // prefix of the uninterrupted run (init row included).
        let seen = Timeline { scenario: "prefix".into(), records: stepper.records().to_vec() }
            .rows();
        assert!(!seen.is_empty());
        assert_eq!(
            seen,
            reference[..seen.len()].to_vec(),
            "prefix after {k} stepped epochs diverges"
        );
        while stepper.step(&mut eng) {}
        assert_eq!(
            stepper.finish(&mut eng).rows(),
            reference,
            "resume after {k} stepped epochs changed the timeline"
        );
    }
}

#[test]
fn resume_survives_a_thread_count_change_at_the_pause() {
    let _g = threads_lock();
    let reference = straight_through();
    let mut eng = engine();
    let s = scenario();
    let mut stepper = EpochStepper::new(&eng, &s);
    for _ in 0..4 {
        assert!(stepper.step(&mut eng));
    }
    // The operator bumps parallelism mid-campaign; byte-identity is
    // the repo's determinism contract at any thread count.
    par::set_threads(8);
    while stepper.step(&mut eng) {}
    let rows = stepper.finish(&mut eng).rows();
    par::set_threads(0);
    assert_eq!(rows, reference, "thread-count change at the pause leaked into the timeline");
}
