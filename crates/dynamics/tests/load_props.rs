//! Property tests for closed-loop load management.
//!
//! Two contracts guard the `loadmgmt` integration:
//!
//! * **Hysteresis never flip-flops** — once the hysteresis controller
//!   releases a `(site, neighbor)` withhold it must never re-shed that
//!   pair within the same run, whatever the crowd shape or watermark.
//! * **A null controller is a no-op** — attaching `NullController` to
//!   a capacity-aware engine must reproduce the controller-less
//!   timeline byte-for-byte across every scenario family the `dyn*`
//!   experiments script.

mod common;

use anycast_dynamics::{DynUser, DynamicsEngine, RecomputeMode, RoutingEvent, Scenario};
use analysis::SiteCapacities;
use loadmgmt::{
    HysteresisController, LoadAction, LoadController, LoadObservation, NullController,
};
use netsim::{LatencyModel, SimTime};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, OnceLock};
use topology::gen::Internet;
use topology::{AnycastDeployment, SiteId};

/// One shared world: building the topology dominates a proptest case,
/// so all cases replay scenarios over the same (immutable) internet.
fn world() -> &'static (Internet, Arc<AnycastDeployment>, Vec<DynUser>) {
    static WORLD: OnceLock<(Internet, Arc<AnycastDeployment>, Vec<DynUser>)> = OnceLock::new();
    WORLD.get_or_init(|| common::flat_world(111, 4, "load-props"))
}

fn engine(mode: RecomputeMode) -> DynamicsEngine<'static> {
    let (net, dep, users) = world();
    DynamicsEngine::new(
        &net.graph,
        Arc::clone(dep),
        LatencyModel::default(),
        users.clone(),
        mode,
    )
}

/// Delegates every decision to an inner hysteresis controller while
/// journaling the actions it emits, so a test can audit the shed /
/// release sequence per `(site, neighbor)` pair after the run.
#[derive(Debug)]
struct Recording {
    inner: HysteresisController,
    log: Arc<Mutex<Vec<LoadAction>>>,
}

impl LoadController for Recording {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn max_rounds(&self) -> u32 {
        self.inner.max_rounds()
    }

    fn decide(&mut self, obs: &LoadObservation<'_>) -> Vec<LoadAction> {
        let acts = self.inner.decide(obs);
        self.log.lock().unwrap().extend(acts.iter().copied());
        acts
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Whatever the crowd and watermark shape, once hysteresis
    /// releases a withheld `(site, neighbor)` pair it never sheds that
    /// pair again in the same run — the release pin holds.
    #[test]
    fn hysteresis_never_flip_flops_a_withhold(
        factor in 1.3f64..4.0,
        radius_km in 2_000.0f64..9_000.0,
        cap_factor in 1.05f64..1.6,
        low_frac in 0.4f64..0.95,
        hold_ticks in 2u32..8,
        site_sel in 0u32..4,
    ) {
        let base = engine(RecomputeMode::Incremental);
        let caps = SiteCapacities::from_headroom(&base.site_loads(), cap_factor, 1.0);
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut e = base.with_capacities(caps).with_controller(Box::new(Recording {
            inner: HysteresisController::new(low_frac),
            log: Arc::clone(&log),
        }));
        let center = e.deployment().sites[site_sel as usize].location;
        let tick_ms = 60_000.0;
        let s = Scenario::flash_crowd(
            "prop-crowd",
            center,
            radius_km,
            factor,
            SimTime::from_secs(60.0),
            hold_ticks as f64 * tick_ms,
            tick_ms,
        );
        e.run(&s);
        let log = log.lock().unwrap();
        let mut released: Vec<(SiteId, topology::Asn)> = Vec::new();
        for act in log.iter() {
            match *act {
                LoadAction::Release { site, session } => released.push((site, session)),
                LoadAction::Shed { site, session } => {
                    prop_assert!(
                        !released.contains(&(site, session)),
                        "pair ({site:?}, {session:?}) shed again after release: {log:?}"
                    );
                }
            }
        }
        // Ledger identity holds for every parameterization.
        let ledger = e.load_ledger();
        prop_assert!(ledger.released_users <= ledger.shed_users + 1e-9);
    }
}

/// Every scenario family the `dyn*` experiments script, replayed with
/// a `NullController` attached, reproduces the controller-less
/// timeline byte-for-byte (same rows, same ledger accrual).
#[test]
fn null_controller_reproduces_every_scenario_family() {
    let (net, dep, _) = world();
    let probe = engine(RecomputeMode::Incremental);
    let caps = SiteCapacities::from_headroom(&probe.site_loads(), 1.1, 1.0);
    let hot = SiteId(0);
    let neighbor = net.graph.node(dep.sites[1].host).asn;
    let center = dep.sites[0].location;
    let scenarios: Vec<Scenario> = vec![
        Scenario::site_flap("flap", hot, SimTime::from_secs(60.0), 600_000.0, 3, 30_000.0, 7),
        Scenario::gradual_drain("drain", hot, SimTime::from_secs(10.0), 30_000.0, 4, 120_000.0),
        Scenario::regional_outage(
            "regional",
            &dep,
            &center,
            4_000.0,
            SimTime::from_secs(30.0),
            240_000.0,
            15_000.0,
            7,
        )
        .0,
        Scenario::peering_flap("peer", neighbor, SimTime::from_secs(20.0), 90_000.0),
        Scenario::flash_crowd(
            "crowd",
            center,
            5_000.0,
            2.0,
            SimTime::from_secs(60.0),
            240_000.0,
            60_000.0,
        )
        .at(SimTime::from_secs(150.0), RoutingEvent::SiteDown(hot))
        .at(SimTime::from_secs(210.0), RoutingEvent::SiteUp(hot)),
    ];
    for s in &scenarios {
        let mut plain = engine(RecomputeMode::Incremental).with_capacities(caps.clone());
        let mut nulled = engine(RecomputeMode::Incremental)
            .with_capacities(caps.clone())
            .with_controller(Box::new(NullController));
        let tp = plain.run(s);
        let tn = nulled.run(s);
        assert_eq!(tp.rows(), tn.rows(), "scenario {} diverged under NullController", s.name);
        assert_eq!(
            plain.load_ledger().overload_site_ms,
            nulled.load_ledger().overload_site_ms,
            "scenario {}: overload accrual must not depend on the controller",
            s.name
        );
        assert_eq!(nulled.load_ledger().shed_users, 0.0);
        assert_eq!(nulled.load_ledger().controller_rounds, 0);
    }
}
