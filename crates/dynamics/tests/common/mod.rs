//! Shared world builders for the dynamics integration suites.
//!
//! Each integration-test binary compiles this module privately (via
//! `mod common;`), so any `OnceLock` caching a caller wraps around
//! these constructors stays per-binary — the module dedupes the
//! *source* of the builders, not the built worlds.

#![allow(dead_code)] // each test binary uses the subset it needs

use anycast_dynamics::{DynUser, SwapDeployment};
use cdn::{Cdn, CdnConfig};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use topology::gen::Internet;
use topology::{
    AnycastDeployment, AnycastSite, InternetGenerator, SiteId, SiteScope, TopologyConfig,
};

/// `par::set_threads` is process-global; tests that flip it must not
/// overlap within a binary.
pub fn threads_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Uniform-weight dynamic users at every user location of `net`.
pub fn uniform_users(net: &Internet) -> Vec<DynUser> {
    net.user_locations()
        .iter()
        .map(|l| DynUser {
            asn: l.asn,
            location: net.world.region(l.region).center,
            weight: 1.0,
            queries_per_day: 1_000.0,
        })
        .collect()
}

/// A small internet with `n_sites` global anycast sites on sampled
/// hoster ASes — the flat (single-deployment) test world.
pub fn flat_world(
    seed: u64,
    n_sites: usize,
    name: &str,
) -> (Internet, Arc<AnycastDeployment>, Vec<DynUser>) {
    let mut net = InternetGenerator::generate(&TopologyConfig::small(seed));
    let hosts = net.sample_hosters(n_sites);
    let sites: Vec<AnycastSite> = hosts
        .iter()
        .enumerate()
        .map(|(i, h)| AnycastSite {
            id: SiteId(i as u32),
            name: format!("s{i}"),
            host: *h,
            location: net.graph.node(*h).pops[0],
            scope: SiteScope::Global,
        })
        .collect();
    let dep = AnycastDeployment::new(name, sites, vec![]);
    let users = uniform_users(&net);
    (net, Arc::new(dep), users)
}

/// A small internet with the five nested CDN rings at scale 0.12
/// (ring sizes 3/6/9/11/13) — the swap/columnar test world.
pub fn cdn_world(seed: u64) -> (Internet, Cdn, Vec<DynUser>) {
    let mut net = InternetGenerator::generate(&TopologyConfig::small(seed));
    let cdn = Cdn::build(&mut net, &CdnConfig { scale: 0.12, ..CdnConfig::small() });
    let users = uniform_users(&net);
    (net, cdn, users)
}

/// One swap slot per ring of `cdn`, in ring order.
pub fn swap_set(cdn: &Cdn) -> Vec<SwapDeployment> {
    cdn.rings
        .iter()
        .map(|r| SwapDeployment {
            deployment: Arc::clone(&r.deployment),
            universe: cdn.ring_universe(r),
        })
        .collect()
}
