//! Property tests for deployment swaps: random event sequences over
//! the nested-ring swap set never panic or lose users, and a
//! promotion to a superset ring never makes any user worse off at
//! convergence.

mod common;

use anycast_dynamics::{DynUser, DynamicsEngine, RecomputeMode, RoutingEvent, Scenario};
use cdn::Cdn;
use common::swap_set;
use netsim::{LatencyModel, SimTime};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use topology::gen::Internet;
use topology::SiteId;

/// One shared world: building the topology dominates a proptest case,
/// so all cases replay scenarios over the same (immutable) internet.
fn world() -> &'static (Internet, Cdn, Vec<DynUser>) {
    static WORLD: OnceLock<(Internet, Cdn, Vec<DynUser>)> = OnceLock::new();
    WORLD.get_or_init(|| common::cdn_world(131))
}

fn engine(ring: usize, mode: RecomputeMode) -> DynamicsEngine<'static> {
    let (net, cdn, users) = world();
    DynamicsEngine::new(
        &net.graph,
        Arc::clone(&cdn.rings[ring].deployment),
        LatencyModel::default(),
        users.clone(),
        mode,
    )
    .with_swap_set(swap_set(cdn), ring)
}

/// Raw generated step: (kind, site selector, ring selector, second).
/// Selectors are reduced modulo the world's actual sizes in the test
/// body so the strategy stays independent of the topology scale.
type Step = (u8, u32, u32, u32);

fn scenario_from(steps: &[Step]) -> Scenario {
    let (_, cdn, _) = world();
    let n_rings = cdn.rings.len() as u32;
    // Sites of the smallest ring exist in every ring, so targeting
    // them is valid whatever deployment a prior swap left effective.
    let n_min = cdn.rings[0].deployment.sites.len() as u32;
    let mut s = Scenario::new("prop");
    for &(kind, site, ring, sec) in steps {
        let site = SiteId(site % n_min);
        let to = ring % n_rings;
        let t = SimTime::from_secs(f64::from(sec));
        s = match kind % 5 {
            0 => s.at(t, RoutingEvent::RingPromote { to }),
            1 => s.at(t, RoutingEvent::RingDemote { to }),
            2 => s.at(t, RoutingEvent::SiteDown(site)),
            3 => s.at(t, RoutingEvent::SiteUp(site)),
            _ => s.at(
                t,
                RoutingEvent::DrainStart {
                    site,
                    stage_ms: 20_000.0,
                    stages: 2,
                    hold_ms: 40_000.0,
                },
            ),
        };
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any mix of promotes, demotes, site churn, and drains — with
    /// arbitrary co-batching from colliding timestamps — must run to
    /// completion, keep one state slot per user, and keep every
    /// serving site inside the final effective deployment.
    #[test]
    fn random_swap_sequences_never_panic_or_lose_users(
        steps in proptest::collection::vec((0u8..5, 0u32..64, 0u32..8, 1u32..30), 1..12)
    ) {
        let mut e = engine(2, RecomputeMode::Incremental);
        let n_users = e.user_snapshot().len();
        let t = e.run(&scenario_from(&steps));
        prop_assert!(t.records.len() >= 2, "init plus at least one epoch");
        let snap = e.user_snapshot();
        prop_assert_eq!(snap.len(), n_users, "user slots are conserved");
        let n_sites = e.deployment().sites.len();
        for (site, _, _) in &snap {
            if let Some(s) = site {
                prop_assert!((s.0 as usize) < n_sites,
                    "{} outside the effective deployment of {} sites", s, n_sites);
            }
        }
    }

    /// Swapping to a strictly larger nested ring only adds candidate
    /// sites on unchanged routes: nobody becomes unserved and nobody's
    /// converged latency goes up.
    #[test]
    fn promotion_to_superset_ring_never_hurts(from in 0usize..4, up in 1usize..4) {
        let (_, cdn, _) = world();
        // `from < 4` and `up >= 1` keep this strictly above `from`.
        let to = (from + up).min(cdn.rings.len() - 1);
        prop_assert!(to > from);
        let mut e = engine(from, RecomputeMode::Incremental);
        let before = e.user_snapshot();
        let s = Scenario::new("promote")
            .at(SimTime::from_secs(10.0), RoutingEvent::RingPromote { to: to as u32 });
        e.run(&s);
        let after = e.user_snapshot();
        for (i, ((sb, lb, _), (sa, la, _))) in before.iter().zip(&after).enumerate() {
            if sb.is_some() {
                prop_assert!(sa.is_some(), "user {} lost service on promotion", i);
                prop_assert!(
                    *la <= *lb + 1e-9,
                    "user {} got slower on promotion: {} -> {} ms", i, lb, la
                );
            }
        }
    }
}
