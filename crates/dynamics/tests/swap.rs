//! Deployment-swap integration tests over a real nested-ring CDN:
//! the incremental engine against the full-recompute oracle on
//! swap-heavy scenarios, plus the edge cases of the swap semantics —
//! mid-drain demotions, same-epoch promote+demote cancellation, and
//! identical-ring no-ops.

mod common;

use anycast_dynamics::{DynUser, DynamicsEngine, RecomputeMode, RoutingEvent, Scenario};
use cdn::Cdn;
use common::swap_set;
use netsim::{LatencyModel, SimTime};
use std::sync::Arc;
use topology::gen::Internet;
use topology::SiteId;

/// A small world with the five nested rings (scale 0.12: sizes
/// 3/6/9/11/13, matching the determinism suite's scale).
fn cdn_world() -> (Internet, Cdn, Vec<DynUser>) {
    common::cdn_world(131)
}

fn engine<'g>(
    net: &'g Internet,
    cdn: &Cdn,
    ring: usize,
    users: &[DynUser],
    mode: RecomputeMode,
) -> DynamicsEngine<'g> {
    DynamicsEngine::new(
        &net.graph,
        Arc::clone(&cdn.rings[ring].deployment),
        LatencyModel::default(),
        users.to_vec(),
        mode,
    )
    .with_swap_set(swap_set(cdn), ring)
}

/// The oracle: after every epoch of a scenario mixing promotions,
/// demotions, site churn, and a drain, the incremental engine matches
/// a from-scratch full recompute field-for-field (`recomputed` /
/// `reused` excepted — differing is their whole point) and lands in a
/// byte-identical final per-user state, while provably reusing work.
#[test]
fn incremental_matches_full_oracle_across_swaps() {
    let (net, cdn, users) = cdn_world();
    let r74 = cdn.ring_index("R74").unwrap();
    let r95 = cdn.ring_index("R95").unwrap();
    let r110 = cdn.ring_index("R110").unwrap();
    let scenario = Scenario::new("swap-heavy")
        .at(SimTime::from_secs(60.0), RoutingEvent::RingPromote { to: r95 as u32 })
        .at(SimTime::from_secs(120.0), RoutingEvent::SiteDown(SiteId(0)))
        .at(SimTime::from_secs(180.0), RoutingEvent::SiteUp(SiteId(0)))
        .at(
            SimTime::from_secs(240.0),
            RoutingEvent::DrainStart {
                site: SiteId(1),
                stage_ms: 30_000.0,
                stages: 2,
                hold_ms: 120_000.0,
            },
        )
        // Demote mid-hold: SiteId(1) survives into R74, so the drain
        // carries across the swap and its end stays live.
        .at(SimTime::from_secs(300.0), RoutingEvent::RingDemote { to: r74 as u32 })
        .at(SimTime::from_secs(500.0), RoutingEvent::RingPromote { to: r110 as u32 })
        .at(SimTime::from_secs(560.0), RoutingEvent::RingDemote { to: r74 as u32 });

    let mut inc = engine(&net, &cdn, r74, &users, RecomputeMode::Incremental);
    let mut full = engine(&net, &cdn, r74, &users, RecomputeMode::Full);
    let ti = inc.run(&scenario);
    let tf = full.run(&scenario);

    assert_eq!(ti.records.len(), tf.records.len());
    for (a, b) in ti.records.iter().zip(&tf.records) {
        assert_eq!(a.t_ms, b.t_ms);
        assert_eq!(a.event, b.event);
        assert_eq!(a.shifted, b.shifted, "at {}", a.event);
        assert_eq!(a.shifted_frac, b.shifted_frac, "at {}", a.event);
        assert_eq!(a.unserved_frac, b.unserved_frac, "at {}", a.event);
        assert_eq!(a.median_ms, b.median_ms, "at {}", a.event);
        assert_eq!(a.inflation_ms, b.inflation_ms, "at {}", a.event);
        assert_eq!(a.mean_path_km, b.mean_path_km, "at {}", a.event);
        assert_eq!(a.convergence_ms, b.convergence_ms, "at {}", a.event);
        assert_eq!(a.degraded_queries, b.degraded_queries, "at {}", a.event);
        assert_eq!(a.headroom_frac, b.headroom_frac, "at {}", a.event);
        assert_eq!(a.note, b.note, "at {}", a.event);
    }
    assert_eq!(inc.user_snapshot(), full.user_snapshot(), "final states must agree");
    assert_eq!(inc.current_swap(), r74);
    assert_eq!(inc.deployment().name, "R74");

    let (inc_rc, inc_ru) = ti.recompute_totals();
    let (full_rc, full_ru) = tf.recompute_totals();
    assert_eq!(full_ru, 0, "the oracle reuses nothing");
    assert!(inc_ru > 0, "swap epochs must reuse assignments, got 0");
    assert!(inc_rc < full_rc, "incremental {inc_rc} must beat full {full_rc}");
}

/// A demotion that removes a site mid-staged-drain cancels the drain
/// (ledgered) and leaves the drain's queued follow-ups as recorded
/// stale no-ops.
#[test]
fn demotion_cancels_drain_of_departing_site() {
    let (net, cdn, users) = cdn_world();
    let r74 = cdn.ring_index("R74").unwrap();
    let r95 = cdn.ring_index("R95").unwrap();
    let n74 = cdn.rings[r74].deployment.sites.len();
    let n95 = cdn.rings[r95].deployment.sites.len();
    assert!(n95 > n74, "R95 must strictly contain R74 at this scale");
    // A site of R95 that is not in R74: the first beyond R74's prefix.
    let departing = SiteId(n74 as u32);

    let scenario = Scenario::new("demote-mid-drain")
        // Stages fire at 10 s, 40 s, 70 s, 100 s.
        .at(
            SimTime::from_secs(10.0),
            RoutingEvent::DrainStart {
                site: departing,
                stage_ms: 30_000.0,
                stages: 4,
                hold_ms: 300_000.0,
            },
        )
        .at(SimTime::from_secs(75.0), RoutingEvent::RingDemote { to: r74 as u32 });

    let mut e = engine(&net, &cdn, r95, &users, RecomputeMode::Incremental);
    let t = e.run(&scenario);

    let demote = t
        .records
        .iter()
        .find(|r| r.t_ms == 75_000.0)
        .expect("demotion epoch recorded");
    assert!(demote.event.contains("demote R74"), "got {:?}", demote.event);
    assert!(
        demote.note.contains(&format!("drain on {departing} cancelled: site left")),
        "got {:?}",
        demote.note
    );
    // The stage queued for t = 100 s outlives its drain: stale no-op.
    let stale = t
        .records
        .iter()
        .find(|r| r.t_ms == 100_000.0)
        .expect("queued stage still fires");
    assert!(
        stale.note.contains(&format!("stale drain-stage for {departing} ignored")),
        "got {:?}",
        stale.note
    );
    assert_eq!(stale.shifted, 0.0, "a stale stage moves nobody");
    // No drain survives, so no drain-end is pending: the demotion shrank
    // the deployment and the engine is in a clean R74 steady state.
    assert_eq!(e.deployment().sites.len(), n74);
    assert_eq!(e.current_swap(), r74);
}

/// A same-`SimTime` promote+demote pair targeting one ring cancels
/// into a recorded no-op epoch: nothing recomputes, nothing moves.
#[test]
fn same_epoch_promote_demote_pair_cancels() {
    let (net, cdn, users) = cdn_world();
    let r74 = cdn.ring_index("R74").unwrap();
    let r95 = cdn.ring_index("R95").unwrap();
    let mut e = engine(&net, &cdn, r74, &users, RecomputeMode::Incremental);
    let before = e.user_snapshot();

    let t0 = SimTime::from_secs(30.0);
    let scenario = Scenario::new("ring-flap")
        .at(t0, RoutingEvent::RingPromote { to: r95 as u32 })
        .at(t0, RoutingEvent::RingDemote { to: r95 as u32 });
    let t = e.run(&scenario);

    assert_eq!(t.records.len(), 2, "init + the cancelled epoch");
    let rec = &t.records[1];
    assert_eq!(rec.event, "ring-flap R95");
    assert!(rec.note.contains("promote and demote to R95 cancel (no-op)"), "got {:?}", rec.note);
    assert_eq!(rec.recomputed, 0, "a cancelled pair must not recompute anyone");
    assert_eq!(rec.shifted, 0.0);
    assert_eq!(e.user_snapshot(), before, "state is untouched");
    assert_eq!(e.current_swap(), r74);
}

/// A swap targeting the currently effective ring is a ledgered no-op:
/// recorded, counted, zero recomputes.
#[test]
fn swap_to_identical_ring_is_ledgered_noop() {
    let (net, cdn, users) = cdn_world();
    let r74 = cdn.ring_index("R74").unwrap();
    let mut e = engine(&net, &cdn, r74, &users, RecomputeMode::Incremental);
    let before = e.user_snapshot();

    let scenario = Scenario::new("self-swap")
        .at(SimTime::from_secs(30.0), RoutingEvent::RingPromote { to: r74 as u32 });
    let t = e.run(&scenario);

    assert_eq!(t.records.len(), 2);
    let rec = &t.records[1];
    assert_eq!(rec.event, "promote R74");
    assert!(
        rec.note.contains("swap to the current ring R74 (ledgered no-op)"),
        "got {:?}",
        rec.note
    );
    assert_eq!(rec.recomputed, 0);
    assert_eq!(rec.shifted, 0.0);
    assert_eq!(e.user_snapshot(), before);
    assert_eq!(e.current_swap(), r74);
}

/// When several swaps share an epoch, the last (demotes, promotes,
/// general swaps) wins and the earlier ones are recorded as
/// superseded — the epoch still lands on exactly one deployment.
#[test]
fn last_swap_in_an_epoch_wins() {
    let (net, cdn, users) = cdn_world();
    let r28 = cdn.ring_index("R28").unwrap();
    let r74 = cdn.ring_index("R74").unwrap();
    let r110 = cdn.ring_index("R110").unwrap();
    let mut e = engine(&net, &cdn, r74, &users, RecomputeMode::Incremental);

    let t0 = SimTime::from_secs(30.0);
    let scenario = Scenario::new("pile-up")
        .at(t0, RoutingEvent::RingDemote { to: r28 as u32 })
        .at(t0, RoutingEvent::DeploymentSwap { to: r110 as u32 });
    let t = e.run(&scenario);

    let rec = &t.records[1];
    assert_eq!(rec.event, "demote R28 + swap R110");
    assert!(rec.note.contains("demote to R28 superseded"), "got {:?}", rec.note);
    assert_eq!(e.current_swap(), r110);
    assert_eq!(e.deployment().name, "R110");
}

/// Swap events without a registered swap set are a scenario bug, not
/// silently ignorable.
#[test]
#[should_panic(expected = "swap set")]
fn swap_without_swap_set_panics() {
    let (net, cdn, users) = cdn_world();
    let r74 = cdn.ring_index("R74").unwrap();
    // No with_swap_set.
    let mut e = DynamicsEngine::new(
        &net.graph,
        Arc::clone(&cdn.rings[r74].deployment),
        LatencyModel::default(),
        users,
        RecomputeMode::Incremental,
    );
    let scenario = Scenario::new("orphan-swap")
        .at(SimTime::from_secs(1.0), RoutingEvent::RingPromote { to: 0 });
    e.run(&scenario);
}

/// Capacities and swap sets are mutually exclusive in both orders.
#[test]
#[should_panic(expected = "capacities")]
fn swap_set_after_capacities_panics() {
    let (net, cdn, users) = cdn_world();
    let r74 = cdn.ring_index("R74").unwrap();
    let n = cdn.rings[r74].deployment.sites.len();
    let caps = analysis::SiteCapacities::uniform(n, 1e9);
    let _ = DynamicsEngine::new(
        &net.graph,
        Arc::clone(&cdn.rings[r74].deployment),
        LatencyModel::default(),
        users,
        RecomputeMode::Incremental,
    )
    .with_capacities(caps)
    .with_swap_set(swap_set(&cdn), r74);
}
